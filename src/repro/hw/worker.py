"""Cycle-accurate FSM worker: executes one scheduled task/function.

Each worker is one grey box of the paper's Fig. 2: an independent control
FSM with its own cache port and FIFO connections.  The worker advances at
most one FSM state per cycle; memory operations stall it until the cache
responds, FIFO operations stall on full/empty queues, and multi-cycle
functional units occupy the states the scheduler reserved for them.

Values are computed with the same semantics module the software
interpreter uses (:mod:`repro.interp.ops`), so the hardware simulation is
functionally exact and only timing is modelled.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING

from ..errors import SimulationError
from ..interp.ops import eval_binop, eval_cast, eval_fcmp, eval_gep, eval_icmp
from ..telemetry.events import CycleCategory
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    GEP,
    Alloca,
    BinaryOp,
    Call,
    Cast,
    CondBranch,
    Consume,
    FCmp,
    ICmp,
    Instruction,
    Jump,
    Load,
    ParallelFork,
    ParallelJoin,
    Phi,
    Produce,
    ProduceBroadcast,
    Ret,
    RetrieveLiveout,
    Select,
    Store,
    StoreLiveout,
)
from ..ir.values import Argument, Constant, GlobalVariable, Value
from ..rtl.schedule import FunctionSchedule

if TYPE_CHECKING:  # pragma: no cover
    from .engine import EventScheduler
    from .system import AcceleratorSystem

#: Sentinel "next due cycle" for workers blocked on an event (FIFO space,
#: FIFO data, join) with no statically-known wake time, and for finished
#: workers.  Large enough to exceed any max_cycles while staying an int.
NEVER = 1 << 62


@dataclass
class WorkerStats:
    """Per-worker activity counters (feed the power model and telemetry).

    The five cycle counters partition the worker's lifetime: every tick
    increments exactly one of them, so their sum equals the cycles the
    worker was clocked (the conservation invariant the telemetry tests
    verify).
    """

    active_cycles: int = 0
    idle_cycles: int = 0
    mem_stall_cycles: int = 0
    fifo_full_stall_cycles: int = 0
    fifo_empty_stall_cycles: int = 0
    join_stall_cycles: int = 0
    ops_executed: Counter = field(default_factory=Counter)
    loads: int = 0
    stores: int = 0
    fifo_pushes: int = 0
    fifo_pops: int = 0

    @property
    def fifo_stall_cycles(self) -> int:
        return self.fifo_full_stall_cycles + self.fifo_empty_stall_cycles

    @property
    def total_cycles(self) -> int:
        return (
            self.active_cycles
            + self.idle_cycles
            + self.mem_stall_cycles
            + self.fifo_full_stall_cycles
            + self.fifo_empty_stall_cycles
            + self.join_stall_cycles
        )

    def breakdown(self) -> dict[str, int]:
        """Cycles by :class:`~repro.telemetry.events.CycleCategory` value."""
        return {
            CycleCategory.COMPUTE.value: self.active_cycles,
            CycleCategory.CACHE.value: self.mem_stall_cycles,
            CycleCategory.FIFO_FULL.value: self.fifo_full_stall_cycles,
            CycleCategory.FIFO_EMPTY.value: self.fifo_empty_stall_cycles,
            CycleCategory.JOIN.value: self.join_stall_cycles,
            CycleCategory.IDLE.value: self.idle_cycles,
        }

    def to_dict(self) -> dict:
        """JSON-ready form (``ops_executed`` becomes a key-sorted dict)."""
        return {
            "active_cycles": self.active_cycles,
            "idle_cycles": self.idle_cycles,
            "mem_stall_cycles": self.mem_stall_cycles,
            "fifo_full_stall_cycles": self.fifo_full_stall_cycles,
            "fifo_empty_stall_cycles": self.fifo_empty_stall_cycles,
            "join_stall_cycles": self.join_stall_cycles,
            "ops_executed": {
                op: self.ops_executed[op] for op in sorted(self.ops_executed)
            },
            "loads": self.loads,
            "stores": self.stores,
            "fifo_pushes": self.fifo_pushes,
            "fifo_pops": self.fifo_pops,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkerStats":
        known = {f.name for f in fields(cls)}
        kept = {k: v for k, v in data.items() if k in known}
        kept["ops_executed"] = Counter(kept.get("ops_executed") or {})
        return cls(**kept)


class _Frame:
    __slots__ = (
        "function", "schedule", "block", "state", "cursor",
        "prev_block", "env", "call_inst", "state_ops",
    )

    def __init__(
        self, function: Function, schedule: FunctionSchedule, call_inst=None
    ) -> None:
        self.function = function
        self.schedule = schedule
        self.block: BasicBlock = function.entry
        self.state = 0
        self.cursor = 0
        self.prev_block: BasicBlock | None = None
        self.env: dict[int, int | float] = {}
        self.call_inst = call_inst
        self.state_ops = schedule.block_schedule(self.block).states

    def enter_block(self, block: BasicBlock) -> None:
        self.prev_block = self.block
        self.block = block
        self.state = 0
        self.cursor = 0
        self.state_ops = self.schedule.block_schedule(block).states


class HwWorker:
    """One hardware worker executing a scheduled function."""

    def __init__(
        self,
        name: str,
        function: Function,
        args: list[int | float],
        system: "AcceleratorSystem",
        worker_id: int = 0,
        start_cycle: int = 0,
    ) -> None:
        self.name = name
        self.system = system
        self.worker_id = worker_id
        self.start_cycle = start_cycle
        self.stats = WorkerStats()
        self._sink = system.sink
        self._trace = system.sink.enabled
        # Cycles before this worker existed (fork at start_cycle - 1) are
        # reset time; pre-seeding them keeps the per-worker conservation
        # invariant exact: category cycles always sum to the run's total.
        self.stats.idle_cycles += start_cycle
        if self._trace and start_cycle > 0:
            self._sink.worker_span(name, CycleCategory.IDLE, 0, start_cycle)
        self.done = False
        #: Frozen by an injected :class:`~repro.faults.plan.WorkerHangFault`
        #: (or a wedged FSM): the worker ticks as IDLE forever and never
        #: finishes, so anything downstream of it eventually deadlocks.
        self.hung = False
        self.return_value: int | float | None = None
        #: Loop group this worker was forked into (None for the top worker).
        self.loop_id: int | None = None
        #: Position in the system's worker list; the clock loop ticks
        #: workers in ``seq`` order, which the event engine's same-cycle
        #: wake rule must respect to stay bit-identical with lockstep.
        self.seq = 0
        #: Event scheduler driving this run (None under the lockstep engine).
        self.engine: "EventScheduler | None" = None
        #: Earliest cycle at which this worker can next make progress.
        self.next_due = start_cycle
        #: Cycle up to which stats/trace attribution has been written.
        self.synced_until = start_cycle
        #: Category every not-yet-attributed cycle since ``synced_until``
        #: belongs to (the worker's current wait reason).
        self.wait_category = CycleCategory.IDLE
        #: Category of the most recent tick; the lockstep deadlock check
        #: and the watchdog's wait-for-graph snapshot read it.
        self.last_category = CycleCategory.IDLE
        self._waiting_until = 0
        self._pending_mem: tuple[Instruction, int] | None = None
        self._blocked_fifo = None
        self._blocked_index: int | None = None
        self._blocked_loop = -1
        #: End of the injected back-pressure window currently blocking a
        #: push (0 when the block is a genuinely full queue); lets the
        #: event engine re-arm on a timer instead of waiting for a pop.
        self._blocked_until = 0
        self._injector = system.injector
        #: The cache this worker's memory port talks to (shared, or a
        #: private slice under the Appendix B.1 memory-partitioning mode).
        self.cache = system.cache_for_new_worker()
        self._frames = self._make_entry_frames(function, args)
        #: Monotonic progress marker for deadlock detection.
        self.progress = 0

    def _make_entry_frames(self, function: Function, args: list[int | float]):
        """Build the initial frame stack (overridden by the specialized
        engine, which uses slot-indexed frames instead of env dicts)."""
        schedule = self.system.schedule_for(function)
        frame = _Frame(function, schedule)
        if len(args) != len(function.args):
            raise SimulationError(
                f"worker {self.name}: expected {len(function.args)} args, "
                f"got {len(args)}"
            )
        for formal, actual in zip(function.args, args):
            frame.env[id(formal)] = actual
        return [frame]

    # -- value plumbing ---------------------------------------------------------

    def _value(self, frame: _Frame, v: Value):
        if isinstance(v, Constant):
            return v.value
        if isinstance(v, GlobalVariable):
            return self.system.global_addresses[v.name]
        try:
            return frame.env[id(v)]
        except KeyError:
            raise SimulationError(
                f"worker {self.name}: undefined value {v.short_name()} in "
                f"@{frame.function.name}"
            ) from None

    # -- main clock edge ----------------------------------------------------------

    def tick(self, cycle: int) -> None:
        """Advance one clock edge, attributing the cycle to one category."""
        category = self._tick(cycle)
        self.last_category = category
        stats = self.stats
        if category is CycleCategory.COMPUTE:
            stats.active_cycles += 1
        elif category is CycleCategory.CACHE:
            stats.mem_stall_cycles += 1
        elif category is CycleCategory.FIFO_FULL:
            stats.fifo_full_stall_cycles += 1
        elif category is CycleCategory.FIFO_EMPTY:
            stats.fifo_empty_stall_cycles += 1
        elif category is CycleCategory.JOIN:
            stats.join_stall_cycles += 1
        else:
            stats.idle_cycles += 1
        if self._trace:
            self._sink.worker_cycle(self.name, cycle, category)
        if self.engine is not None:
            self._arm(cycle, category)

    def _arm(self, cycle: int, category: CycleCategory) -> None:
        """Tell the event scheduler when this worker next needs a tick.

        Ticks with a statically-known resume cycle (compute, cache waits,
        reset holds) set ``next_due`` directly; event waits (FIFO space,
        FIFO data, join) park the worker at ``NEVER`` and register a wake
        condition, so the clock can jump straight past the whole stall.
        """
        self.synced_until = cycle + 1
        if self.done or self.hung:
            self.next_due = NEVER
            self.wait_category = CycleCategory.IDLE
        elif category is CycleCategory.COMPUTE:
            self.next_due = cycle + 1
        elif category is CycleCategory.CACHE:
            self.next_due = max(self._waiting_until, cycle + 1)
            self.wait_category = CycleCategory.CACHE
        elif category is CycleCategory.FIFO_FULL:
            self.wait_category = category
            if self._blocked_until > cycle:
                # Injected back-pressure: the window end is a statically
                # known retry time, so arm a timer instead of a pop wake.
                self.next_due = self._blocked_until
            else:
                self.next_due = NEVER
                self.engine.wait_on_fifo(self, self._blocked_fifo)
        elif category is CycleCategory.FIFO_EMPTY:
            self.next_due = NEVER
            self.wait_category = category
            self.engine.wait_on_fifo(self, self._blocked_fifo)
        elif category is CycleCategory.JOIN:
            self.next_due = NEVER
            self.wait_category = category
            self.engine.wait_on_join(self, self._blocked_loop)
        else:  # IDLE: held in reset until start_cycle
            self.next_due = max(self.start_cycle, cycle + 1)
            self.wait_category = CycleCategory.IDLE

    def _tick(self, cycle: int) -> CycleCategory:
        if self.done or self.hung:
            return CycleCategory.IDLE
        if cycle < self.start_cycle:
            return CycleCategory.IDLE
        if cycle < self._waiting_until:
            return CycleCategory.CACHE
        if (
            self._injector.enabled
            and self._injector.hang_pending(self, cycle)
            and not self._would_block(cycle)
        ):
            # Freeze only at a progress-capable tick: during a stall both
            # engines attribute the same wait cycles whether or not the
            # hang is pending, so the simulated history up to the freeze
            # stays bit-identical between them.
            self.hung = True
            self._injector.hang_triggered(self)
            return CycleCategory.IDLE
        if self._pending_mem is not None:
            self._complete_memory()
        frame = self._frames[-1]
        ops = (
            frame.state_ops[frame.state]
            if frame.state < len(frame.state_ops)
            else []
        )
        while frame.cursor < len(ops):
            inst = ops[frame.cursor]
            outcome = self._execute(frame, inst, cycle)
            if outcome == "wait_mem":
                # Issue cycle of a load/store whose data isn't ready yet.
                return CycleCategory.CACHE
            if outcome == "wait_full":
                return CycleCategory.FIFO_FULL
            if outcome == "wait_empty":
                return CycleCategory.FIFO_EMPTY
            if outcome == "wait_join":
                return CycleCategory.JOIN
            if outcome in ("call", "ret", "branch"):
                self.progress += 1
                if self._trace and not self.done:
                    self._emit_state(cycle)
                return CycleCategory.COMPUTE
            frame.cursor += 1
            self.progress += 1
        # State complete: advance within the block (one state per cycle).
        self.progress += 1
        frame.state += 1
        frame.cursor = 0
        if frame.state >= len(frame.state_ops):
            raise SimulationError(
                f"worker {self.name}: fell off the end of block "
                f"{frame.block.short_name()} (missing terminator?)"
            )
        if self._trace:
            self._emit_state(cycle)
        return CycleCategory.COMPUTE

    def _would_block(self, cycle: int) -> bool:
        """Read-only probe: would ``_tick(cycle)`` stall without progress?

        Used to defer an injected hang to a progress-capable tick.  Must
        stay side-effect free: it runs every lockstep cycle while a hang
        is pending but only at wake ticks under the event engine, so any
        state it touched would break engine bit-identity.
        """
        if self._pending_mem is not None:
            return False  # completing the outstanding access is progress
        frame = self._frames[-1]
        ops = (
            frame.state_ops[frame.state]
            if frame.state < len(frame.state_ops)
            else []
        )
        if frame.cursor >= len(ops):
            return False  # state advance is progress
        inst = ops[frame.cursor]
        if isinstance(inst, Produce):
            fifo = self.system.fifo_for(inst.channel)
            index = int(self._value(frame, inst.worker_select)) % inst.channel.n_channels
            if self._injector.enabled and fifo.injected_block_until(cycle) > cycle:
                return True
            return not fifo.can_push(index)
        if isinstance(inst, ProduceBroadcast):
            fifo = self.system.fifo_for(inst.channel)
            if self._injector.enabled and fifo.injected_block_until(cycle) > cycle:
                return True
            return not fifo.can_push_broadcast()
        if isinstance(inst, Consume):
            fifo = self.system.fifo_for(inst.channel)
            if inst.worker_select is not None:
                index = int(self._value(frame, inst.worker_select)) % inst.channel.n_channels
            else:
                index = self.worker_id % inst.channel.n_channels
            return not fifo.can_pop(index)
        if isinstance(inst, ParallelJoin):
            return not self.system.join_ready(inst.loop_id)
        return False

    def event_blocked(self, cycle: int) -> bool:
        """True when only another worker's action can unblock this worker.

        The lockstep engine's per-cycle deadlock test: exactly the
        condition under which the event engine parks the worker at
        ``NEVER``, so both engines detect a deadlock at the same cycle.
        """
        if self.done:
            return False
        if self.hung:
            return True
        category = self.last_category
        if category is CycleCategory.FIFO_FULL:
            if self._blocked_until > cycle:
                # An active injected back-pressure window has a known end
                # (a pending timer under the event engine): not a deadlock.
                return False
            # Recheck the queue: a pop later in this same cycle would
            # have queued a wake event under the event engine.
            if self._blocked_index is None:
                return not self._blocked_fifo.can_push_broadcast()
            return not self._blocked_fifo.can_push(self._blocked_index)
        if category is CycleCategory.FIFO_EMPTY:
            return not self._blocked_fifo.can_pop(self._blocked_index)
        if category is CycleCategory.JOIN:
            return not self.system.join_ready(self._blocked_loop)
        return False

    def _emit_state(self, cycle: int) -> None:
        frame = self._frames[-1]
        self._sink.worker_state(
            self.name,
            cycle,
            f"{frame.function.name}:{frame.block.short_name()}",
            frame.state,
        )

    def _complete_memory(self) -> None:
        inst, addr = self._pending_mem  # type: ignore[misc]
        frame = self._frames[-1]
        if isinstance(inst, Load):
            frame.env[id(inst)] = self.system.memory.load(addr, inst.type)
        else:
            assert isinstance(inst, Store)
            self.system.memory.store(
                addr, inst.value.type, self._value(frame, inst.value)
            )
        self._pending_mem = None
        frame.cursor += 1
        self.progress += 1

    # -- instruction execution ------------------------------------------------------

    def _execute(self, frame: _Frame, inst: Instruction, cycle: int) -> str:
        self.stats.ops_executed[inst.opcode] += 1
        if isinstance(inst, BinaryOp):
            a = self._value(frame, inst.lhs)
            b = self._value(frame, inst.rhs)
            frame.env[id(inst)] = eval_binop(inst, a, b)
            return "ok"
        if isinstance(inst, ICmp):
            frame.env[id(inst)] = eval_icmp(
                inst, self._value(frame, inst.lhs), self._value(frame, inst.rhs)
            )
            return "ok"
        if isinstance(inst, FCmp):
            frame.env[id(inst)] = eval_fcmp(
                inst, self._value(frame, inst.lhs), self._value(frame, inst.rhs)
            )
            return "ok"
        if isinstance(inst, GEP):
            base = self._value(frame, inst.base)
            idx = [self._value(frame, i) for i in inst.indices]
            frame.env[id(inst)] = eval_gep(inst, base, idx)
            return "ok"
        if isinstance(inst, Cast):
            frame.env[id(inst)] = eval_cast(inst, self._value(frame, inst.value))
            return "ok"
        if isinstance(inst, Select):
            c, t, f = (self._value(frame, op) for op in inst.operands)
            frame.env[id(inst)] = t if c else f
            return "ok"
        if isinstance(inst, Load):
            addr = int(self._value(frame, inst.pointer))
            ready = self.cache.access(addr, False, cycle)
            self.stats.loads += 1
            self._pending_mem = (inst, addr)
            self._waiting_until = ready
            return "wait_mem"
        if isinstance(inst, Store):
            addr = int(self._value(frame, inst.pointer))
            ready = self.cache.access(addr, True, cycle)
            self.stats.stores += 1
            self._pending_mem = (inst, addr)
            self._waiting_until = ready
            return "wait_mem"
        if isinstance(inst, Produce):
            fifo = self.system.fifo_for(inst.channel)
            index = int(self._value(frame, inst.worker_select)) % inst.channel.n_channels
            blocked_until = (
                fifo.injected_block_until(cycle) if self._injector.enabled else 0
            )
            if blocked_until > cycle or not fifo.can_push(index):
                if (
                    blocked_until > cycle
                    and self.last_category is not CycleCategory.FIFO_FULL
                ):
                    self._injector.note_backpressure_block(fifo, cycle)
                fifo.stats.full_stall_cycles += 1
                self.stats.ops_executed[inst.opcode] -= 1
                self._blocked_fifo = fifo
                self._blocked_index = index
                self._blocked_until = blocked_until
                return "wait_full"
            fifo.push(index, self._value(frame, inst.value), cycle)
            self.stats.fifo_pushes += 1
            return "ok"
        if isinstance(inst, ProduceBroadcast):
            fifo = self.system.fifo_for(inst.channel)
            blocked_until = (
                fifo.injected_block_until(cycle) if self._injector.enabled else 0
            )
            if blocked_until > cycle or not fifo.can_push_broadcast():
                if (
                    blocked_until > cycle
                    and self.last_category is not CycleCategory.FIFO_FULL
                ):
                    self._injector.note_backpressure_block(fifo, cycle)
                fifo.stats.full_stall_cycles += 1
                self.stats.ops_executed[inst.opcode] -= 1
                self._blocked_fifo = fifo
                self._blocked_index = None  # needs space in every queue
                self._blocked_until = blocked_until
                return "wait_full"
            fifo.push_broadcast(self._value(frame, inst.value), cycle)
            self.stats.fifo_pushes += inst.channel.n_channels
            return "ok"
        if isinstance(inst, Consume):
            fifo = self.system.fifo_for(inst.channel)
            if inst.worker_select is not None:
                index = int(self._value(frame, inst.worker_select)) % inst.channel.n_channels
            else:
                index = self.worker_id % inst.channel.n_channels
            if not fifo.can_pop(index):
                fifo.stats.empty_stall_cycles += 1
                self.stats.ops_executed[inst.opcode] -= 1
                self._blocked_fifo = fifo
                self._blocked_index = index
                return "wait_empty"
            frame.env[id(inst)] = fifo.pop(index, cycle)
            self.stats.fifo_pops += 1
            return "ok"
        if isinstance(inst, StoreLiveout):
            self.system.liveout_regs[inst.liveout_id] = self._value(frame, inst.value)
            return "ok"
        if isinstance(inst, RetrieveLiveout):
            if inst.liveout_id not in self.system.liveout_regs:
                raise SimulationError(f"liveout #{inst.liveout_id} never stored")
            frame.env[id(inst)] = self.system.liveout_regs[inst.liveout_id]
            return "ok"
        if isinstance(inst, ParallelFork):
            liveins = [self._value(frame, v) for v in inst.liveins]
            self.system.fork_worker(inst, liveins, cycle)
            return "ok"
        if isinstance(inst, ParallelJoin):
            if not self.system.join_ready(inst.loop_id):
                self.stats.ops_executed[inst.opcode] -= 1
                self._blocked_loop = inst.loop_id
                return "wait_join"
            self.system.finish_join(inst.loop_id, cycle)
            return "ok"
        if isinstance(inst, Call):
            if inst.callee.is_declaration:
                return self._builtin_call(frame, inst)
            callee_schedule = self.system.schedule_for(inst.callee)
            new_frame = _Frame(inst.callee, callee_schedule, call_inst=inst)
            for formal, actual in zip(inst.callee.args, inst.args):
                new_frame.env[id(formal)] = self._value(frame, actual)
            self._frames.append(new_frame)
            return "call"
        if isinstance(inst, Ret):
            value = None if inst.value is None else self._value(frame, inst.value)
            self._frames.pop()
            if not self._frames:
                self.done = True
                self.system.worker_finished(self)
                self.return_value = value
                return "ret"
            caller = self._frames[-1]
            if value is not None:
                caller.env[id(frame.call_inst)] = value
            caller.cursor += 1
            return "ret"
        if isinstance(inst, Jump):
            self._branch_to(frame, inst.target)
            return "branch"
        if isinstance(inst, CondBranch):
            cond = self._value(frame, inst.cond)
            self._branch_to(frame, inst.if_true if cond else inst.if_false)
            return "branch"
        if isinstance(inst, Alloca):
            frame.env[id(inst)] = self.system.memory.alloc_object(
                inst.allocated_type, site=-2
            )
            return "ok"
        if isinstance(inst, Phi):
            return "ok"  # phis are resolved on block entry
        raise SimulationError(f"worker cannot execute opcode {inst.opcode}")

    def _builtin_call(self, frame: _Frame, inst: Call) -> str:
        from ..interp.interpreter import MALLOC_NAMES

        if inst.callee.name in MALLOC_NAMES:
            size = int(self._value(frame, inst.args[0]))
            frame.env[id(inst)] = self.system.memory.malloc(size, site=-4)
            return "ok"
        raise SimulationError(f"call to undefined @{inst.callee.name} in hardware")

    def _branch_to(self, frame: _Frame, target: BasicBlock) -> None:
        # Evaluate the target's phis against the edge (atomically).
        phis = target.phis()
        values = [
            self._value(frame, phi.incoming_for(frame.block)) for phi in phis
        ]
        frame.enter_block(target)
        for phi, value in zip(phis, values):
            frame.env[id(phi)] = value
            self.stats.ops_executed["phi"] += 1
        # Skip the phi ops at the head of state 0 (already applied).
        ops0 = frame.state_ops[0] if frame.state_ops else []
        while frame.cursor < len(ops0) and isinstance(ops0[frame.cursor], Phi):
            frame.cursor += 1
