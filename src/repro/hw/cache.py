"""Direct-mapped data-cache timing model with a ported crossbar.

Geometry follows the paper's evaluation platform (Section 4.1): 512 lines,
128-byte blocks, direct mapped, 8 ports into the accelerator.  The cache
models *timing only* — data always comes from the shared functional
:class:`~repro.interp.memory.Memory`, so a timing bug can never corrupt
results, only cycle counts.

Port arbitration: at most ``ports`` accesses may start per cycle (the
request crossbar of Fig. 2); excess requests slip to following cycles.
Misses additionally serialise on the single memory channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from ..faults.plan import NULL_INJECTOR
from ..telemetry.events import NULL_SINK, TraceSink


@dataclass
class CacheStats:
    """Hit/miss/writeback/conflict counters for the cache model."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    port_conflicts: int = 0
    prefetches: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def absorb(self, other: "CacheStats") -> None:
        """Accumulate ``other`` into this stats object (slice aggregation).

        Used to roll the per-worker private-cache slices of the Appendix
        B.1 memory-partitioning mode up into one report-level summary.
        """
        self.hits += other.hits
        self.misses += other.misses
        self.writebacks += other.writebacks
        self.port_conflicts += other.port_conflicts
        self.prefetches += other.prefetches

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks,
            "port_conflicts": self.port_conflicts,
            "prefetches": self.prefetches,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CacheStats":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


class DirectMappedCache:
    """Timing model of the shared D-cache plus its crossbar."""

    def __init__(
        self,
        n_lines: int = 512,
        block_size: int = 128,
        ports: int = 8,
        hit_latency: int = 2,
        miss_penalty: int = 24,
        next_line_prefetch: bool = False,
    ) -> None:
        """``next_line_prefetch`` models the prefetching extension the
        paper leaves as future work (Appendix B.2): every demand miss also
        fills the next sequential line in the shadow of the same memory
        transaction.  Helps streaming accesses (arrays, image rows); does
        nothing for pointer chasing."""
        if n_lines & (n_lines - 1) or block_size & (block_size - 1):
            raise ValueError("cache geometry must be powers of two")
        self.n_lines = n_lines
        self.block_size = block_size
        self.ports = ports
        self.hit_latency = hit_latency
        self.miss_penalty = miss_penalty
        self.next_line_prefetch = next_line_prefetch
        self._tags: list[int | None] = [None] * n_lines
        self._dirty: list[bool] = [False] * n_lines
        self._port_usage: dict[int, int] = {}
        self._memory_free_at = 0
        self.stats = CacheStats()
        self.sink: TraceSink = NULL_SINK
        #: Fault-injection hooks (no-op unless a plan is attached).
        self.injector = NULL_INJECTOR

    def _index_and_tag(self, addr: int) -> tuple[int, int]:
        block = addr // self.block_size
        return block % self.n_lines, block // self.n_lines

    def lookup(self, addr: int) -> bool:
        """Would this access hit right now? (no state change)"""
        index, tag = self._index_and_tag(addr)
        return self._tags[index] == tag

    def access(self, addr: int, is_write: bool, cycle: int) -> int:
        """Perform an access starting no earlier than ``cycle``.

        Returns the cycle at which the data (or write ack) is ready.
        """
        start = self._arbitrate(cycle)
        index, tag = self._index_and_tag(addr)
        hit = self._tags[index] == tag
        if hit:
            self.stats.hits += 1
            ready = start + self.hit_latency
        else:
            self.stats.misses += 1
            if self._tags[index] is not None and self._dirty[index]:
                self.stats.writebacks += 1
            service_start = max(start, self._memory_free_at)
            ready = service_start + self.miss_penalty
            self._memory_free_at = ready
            self._tags[index] = tag
            self._dirty[index] = False
            if self.next_line_prefetch:
                self._prefetch_line(addr + self.block_size)
        if is_write:
            self._dirty[index] = True
        if self.injector.enabled:
            # Injected DRAM pressure: the transaction's data comes back
            # late, but the bus reservation (_memory_free_at) is left
            # untouched — the extra cycles model downstream interconnect
            # latency, not occupancy.
            ready += self.injector.mem_extra(cycle)
        if self.sink.enabled:
            self.sink.cache_access(cycle, addr, is_write, hit, ready)
        return ready

    def _prefetch_line(self, addr: int) -> None:
        """Fill a line in the shadow of an ongoing transaction (no demand
        latency charged; a clean line may be displaced)."""
        index, tag = self._index_and_tag(addr)
        if self._tags[index] == tag:
            return
        if self._tags[index] is not None and self._dirty[index]:
            return  # don't force a writeback for a speculative fill
        self.stats.prefetches += 1
        self._memory_free_at += self.miss_penalty // 2  # bus occupancy
        self._tags[index] = tag
        self._dirty[index] = False

    def _arbitrate(self, cycle: int) -> int:
        current = cycle
        injector = self.injector
        while True:
            # An injected arbitration storm degrades the crossbar to a
            # single port for the cycles its window covers.
            ports = (
                1
                if injector.enabled and injector.port_limited(current)
                else self.ports
            )
            if self._port_usage.get(current, 0) < ports:
                break
            current += 1
            self.stats.port_conflicts += 1
        self._port_usage[current] = self._port_usage.get(current, 0) + 1
        # Garbage-collect old cycles occasionally to bound memory.
        if len(self._port_usage) > 4096:
            cutoff = current - 64
            self._port_usage = {
                c: n for c, n in self._port_usage.items() if c >= cutoff
            }
        return current

    def reset_timing(self) -> None:
        self._port_usage.clear()
        self._memory_free_at = 0

    def reset(self) -> None:
        """Full start-of-run reset: cold tags, clean timing, zero stats.

        ``AcceleratorSystem.run`` resets its caches so every invocation of
        ``run()`` starts from the same power-on state and reports only its
        own accesses (a reused system previously double-counted).
        """
        self._tags = [None] * self.n_lines
        self._dirty = [False] * self.n_lines
        self.reset_timing()
        self.stats = CacheStats()
