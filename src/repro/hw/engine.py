"""Event-driven skip-ahead clock engine for the accelerator system.

The lockstep engine (``AcceleratorSystem._run_lockstep``) ticks every
worker on every cycle, which makes stall-dominated simulations pay full
price for cycles in which no FSM can possibly advance.  This engine keeps
the *semantics* of lockstep — same tick order, same per-cycle stall
accounting, same trace spans — but only simulates cycles at which at
least one worker can make progress:

* Workers report an exact next-due cycle after every tick: compute ticks
  are due next cycle, cache waits are due when the cache said the data is
  ready, a freshly forked worker is due at its ``start_cycle``.
* FIFO waits and join waits have no statically-known wake cycle, so those
  workers park at :data:`~repro.hw.worker.NEVER` and register a wake
  condition; FIFO pushes/pops/resets and worker-finish signals re-arm
  them without any polling.
* The clock then jumps directly to the minimum next-due cycle.  The
  skipped span is batch-attributed to each worker's current wait category
  (and to the FIFO stall counters a lockstep retry loop would have
  bumped), so ``WorkerStats``, ``SimReport`` and the telemetry spans come
  out bit-identical — skipping changes wall-clock time, never cycle
  counts.  ``tests/test_engine_equivalence.py`` pins this down
  differentially against the lockstep oracle.

Same-cycle wake rule: lockstep ticks workers in list order, so an event
produced by worker *i* at cycle *c* is visible to a blocked worker *j*
within cycle *c* only if *j* ticks after *i* (``j.seq > i.seq``);
otherwise *j* first sees it at ``c + 1``.  The scheduler reproduces this
exactly, which is what makes producer/consumer timing bit-identical.

Deadlock detection becomes exact: the lockstep engine infers deadlock
from 16k cycles without progress, while here "every worker parked at
``NEVER``" *is* the condition "no runnable worker and no pending event".
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..faults.watchdog import WATCHDOG
from ..telemetry.events import CycleCategory
from .worker import NEVER, HwWorker

if TYPE_CHECKING:  # pragma: no cover
    from .fifo import FifoBuffer
    from .system import AcceleratorSystem


class EventScheduler:
    """Runs one simulation by jumping between worker wake events."""

    def __init__(self, system: "AcceleratorSystem") -> None:
        self.system = system
        #: id(fifo) -> workers blocked on that buffer (full or empty).
        self._fifo_waiters: dict[int, list[HwWorker]] = {}
        #: loop_id -> workers blocked in parallel_join on that group.
        self._join_waiters: dict[int, list[HwWorker]] = {}
        self._cycle = 0
        #: seq of the worker currently ticking (-1 outside the tick loop);
        #: wake targets compare against it for the same-cycle rule.
        self._active_seq = -1

    # -- wait registration (called from HwWorker._arm) -------------------------

    def wait_on_fifo(self, worker: HwWorker, fifo: "FifoBuffer") -> None:
        waiters = self._fifo_waiters.setdefault(id(fifo), [])
        # A worker can re-block on the same buffer after an injected
        # back-pressure timer expired without ever being woken (and thus
        # without being removed from the list); don't register it twice.
        if worker not in waiters:
            waiters.append(worker)

    def wait_on_join(self, worker: HwWorker, loop_id: int) -> None:
        self._join_waiters.setdefault(loop_id, []).append(worker)

    # -- wake notifications (called from FifoBuffer / the system) --------------

    def fifo_pushed(self, fifo: "FifoBuffer", index: int | None) -> None:
        """Data arrived: wake consumers (``index=None`` for broadcast)."""
        waiters = self._fifo_waiters.get(id(fifo))
        if not waiters:
            return
        for worker in list(waiters):
            if worker.wait_category is CycleCategory.FIFO_EMPTY and (
                index is None or worker._blocked_index == index
            ):
                self._wake(worker, waiters)

    def fifo_popped(self, fifo: "FifoBuffer", index: int) -> None:
        """Space freed: wake producers of this queue and broadcasters."""
        waiters = self._fifo_waiters.get(id(fifo))
        if not waiters:
            return
        for worker in list(waiters):
            if worker.wait_category is CycleCategory.FIFO_FULL and (
                worker._blocked_index is None
                or worker._blocked_index == index
            ):
                self._wake(worker, waiters)

    def fifo_reset(self, fifo: "FifoBuffer") -> None:
        """All queues flushed: every producer wait is satisfiable again."""
        waiters = self._fifo_waiters.get(id(fifo))
        if not waiters:
            return
        for worker in list(waiters):
            if worker.wait_category is CycleCategory.FIFO_FULL:
                self._wake(worker, waiters)

    def worker_done(self, worker: HwWorker) -> None:
        """A worker raised its finish signal; maybe its join completed."""
        loop_id = worker.loop_id
        if loop_id is None:
            return
        waiters = self._join_waiters.get(loop_id)
        if not waiters or not self.system.join_ready(loop_id):
            return
        for waiter in list(waiters):
            self._wake(waiter, waiters)

    def _wake(self, worker: HwWorker, waiters: list[HwWorker]) -> None:
        waiters.remove(worker)
        # Same-cycle if the blocked worker's tick slot is still ahead of
        # the acting worker's in this cycle, next cycle otherwise.
        due = (
            self._cycle
            if worker.seq > self._active_seq
            else self._cycle + 1
        )
        if due < worker.next_due:
            worker.next_due = due

    # -- stall-span attribution -------------------------------------------------

    def _flush(self, worker: HwWorker, upto: int) -> None:
        """Batch-attribute the unsynced span ``[synced_until, upto)``.

        Mirrors exactly what per-cycle lockstep ticks would have written:
        the worker's stall counter for its wait category, the FIFO's
        retry-stall counters when blocked on a queue, and one coalesced
        trace span.
        """
        start = worker.synced_until
        n = upto - start
        if n <= 0:
            return
        category = worker.wait_category
        stats = worker.stats
        if category is CycleCategory.CACHE:
            stats.mem_stall_cycles += n
        elif category is CycleCategory.FIFO_FULL:
            stats.fifo_full_stall_cycles += n
            worker._blocked_fifo.stats.full_stall_cycles += n
        elif category is CycleCategory.FIFO_EMPTY:
            stats.fifo_empty_stall_cycles += n
            worker._blocked_fifo.stats.empty_stall_cycles += n
        elif category is CycleCategory.JOIN:
            stats.join_stall_cycles += n
        else:
            stats.idle_cycles += n
        if self.system.sink.enabled:
            self.system.sink.worker_span(worker.name, category, start, upto)
        worker.synced_until = upto

    # -- clock loop -------------------------------------------------------------

    def run(self, main: HwWorker) -> int:
        """Drive the clock until ``main`` finishes; returns total cycles."""
        system = self.system
        workers = system._workers  # live list: forks append mid-run
        max_cycles = system.max_cycles
        monitor = system.monitor
        next_check = monitor.interval if monitor is not None else 0
        cycle = 0
        while not main.done:
            # Manual min loop: a genexpr resumes one generator frame per
            # worker, which dominates the clock-advance cost on small
            # systems; this runs every simulated cycle.
            cycle = NEVER
            for w in workers:
                due = w.next_due
                if due < cycle:
                    cycle = due
            if cycle >= NEVER:
                # self._cycle is the last simulated cycle — the one at
                # which the final worker blocked, which is exactly where
                # the lockstep engine's per-cycle check fires too.
                raise WATCHDOG.deadlock(system, self._cycle)
            if cycle >= max_cycles:
                # Lockstep never completes a run whose clock reaches
                # max_cycles; fail with the identical error without
                # grinding through the remaining cycles.
                raise WATCHDOG.budget_exceeded(system, cycle)
            self._cycle = cycle
            # Iterating the live list is safe: forks only append, and a
            # freshly forked worker's next_due (start_cycle = cycle + 1)
            # can never pass the due check within the forking cycle.
            for worker in workers:
                if worker.next_due <= cycle:
                    self._active_seq = worker.seq
                    if worker.synced_until < cycle:
                        self._flush(worker, cycle)
                    worker.tick(cycle)
            self._active_seq = -1
            cycle += 1
            if monitor is not None and cycle >= next_check:
                monitor.check(system, cycle)
                next_check = (
                    cycle // monitor.interval + 1
                ) * monitor.interval
        # Pad every worker to the run's end: lockstep keeps clocking
        # finished (idle) and still-blocked workers until main retires.
        for worker in workers:
            if worker.synced_until < cycle:
                self._flush(worker, cycle)
        return cycle
