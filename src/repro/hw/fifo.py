"""Hardware FIFO buffers connecting pipeline stages (paper Fig. 2).

One :class:`FifoBuffer` materialises one compiler
:class:`~repro.ir.primitives.Channel`: ``n_channels`` independent queues
(one per consumer worker), each ``depth`` entries deep.  Pushes to a full
queue and pops from an empty queue stall the issuing FSM — the mechanism
that lets the pipeline tolerate variable memory latency (Section 2.2).

Occupancy changes are reported to the attached telemetry sink (the
zero-overhead :data:`~repro.telemetry.events.NULL_SINK` by default), so a
traced run can reconstruct every queue's fill level over time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING

from ..errors import SimulationError
from ..faults.plan import NULL_INJECTOR
from ..ir.primitives import Channel
from ..telemetry.events import NULL_SINK, TraceSink

if TYPE_CHECKING:  # pragma: no cover
    from .engine import EventScheduler


@dataclass
class FifoStats:
    """Push/pop/stall counters for one FIFO buffer."""

    pushes: int = 0
    pops: int = 0
    full_stall_cycles: int = 0
    empty_stall_cycles: int = 0
    max_occupancy: int = 0
    #: Values discarded by a join-time :meth:`FifoBuffer.reset`; closes the
    #: conservation law ``pushes == pops + occupancy + flushed`` that the
    #: invariant monitor (:mod:`repro.faults.monitor`) checks.
    flushed: int = 0
    #: Static geometry, mirrored here so post-hoc analysis
    #: (:mod:`repro.telemetry.bottleneck`) can tell saturation from slack.
    depth: int = 0
    n_queues: int = 0

    def to_dict(self) -> dict:
        return {
            "pushes": self.pushes,
            "pops": self.pops,
            "full_stall_cycles": self.full_stall_cycles,
            "empty_stall_cycles": self.empty_stall_cycles,
            "max_occupancy": self.max_occupancy,
            "flushed": self.flushed,
            "depth": self.depth,
            "n_queues": self.n_queues,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FifoStats":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


class FifoBuffer:
    """Bounded multi-queue FIFO with stall accounting."""

    def __init__(self, channel: Channel, sink: TraceSink = NULL_SINK) -> None:
        self.channel = channel
        self.queues: list[deque] = [deque() for _ in range(channel.n_channels)]
        self.stats = FifoStats(depth=channel.depth, n_queues=channel.n_channels)
        self.sink = sink
        #: Fault-injection hooks (the zero-overhead null injector unless a
        #: :class:`~repro.faults.plan.FaultInjector` is attached).
        self.injector = NULL_INJECTOR
        #: Event scheduler to notify on push/pop/reset so blocked workers
        #: re-arm without polling (None under the lockstep engine).
        self.engine: "EventScheduler | None" = None

    @property
    def name(self) -> str:
        """Display name, matching the ``SimReport.fifo_stats`` keys."""
        return f"buf{self.channel.channel_id}:{self.channel.name}"

    # -- capacity ----------------------------------------------------------------

    def can_push(self, index: int) -> bool:
        return len(self.queues[index]) < self.channel.depth

    def can_push_broadcast(self) -> bool:
        return all(len(q) < self.channel.depth for q in self.queues)

    def can_pop(self, index: int) -> bool:
        return bool(self.queues[index])

    def injected_block_until(self, cycle: int) -> int:
        """End of an injected back-pressure window covering ``cycle``.

        0 when pushes are unhindered.  Producers treat an active window
        exactly like a full queue (a ``fifo_full_stall`` cycle), except
        the blocked FSM can re-arm on the window end rather than waiting
        for a pop event.
        """
        if self.injector.enabled:
            return self.injector.fifo_blocked_until(self, cycle)
        return 0

    # -- data ---------------------------------------------------------------------

    def push(self, index: int, value, cycle: int = 0) -> None:
        if not self.can_push(index):
            raise SimulationError(
                f"{self.name}: push to full queue {index} "
                f"(depth {self.channel.depth})"
            )
        if self.injector.enabled:
            value = self.injector.corrupt_value(self, value)
        self.queues[index].append(value)
        self.stats.pushes += 1
        self.stats.max_occupancy = max(
            self.stats.max_occupancy, len(self.queues[index])
        )
        if self.sink.enabled:
            self.sink.fifo_occupancy(
                self.name, index, cycle, len(self.queues[index])
            )
        if self.engine is not None:
            self.engine.fifo_pushed(self, index)

    def push_broadcast(self, value, cycle: int = 0) -> None:
        if not self.can_push_broadcast():
            raise SimulationError(f"{self.name}: broadcast push to full buffer")
        for index, queue in enumerate(self.queues):
            copy = value
            if self.injector.enabled:
                # Each queue holds its own BRAM copy of a broadcast value,
                # so an upset flips one copy; counting per copy also keeps
                # the injector's push counter aligned with stats.pushes.
                copy = self.injector.corrupt_value(self, value)
            queue.append(copy)
            self.stats.max_occupancy = max(self.stats.max_occupancy, len(queue))
            if self.sink.enabled:
                self.sink.fifo_occupancy(self.name, index, cycle, len(queue))
        self.stats.pushes += len(self.queues)
        if self.engine is not None:
            self.engine.fifo_pushed(self, None)

    def pop(self, index: int, cycle: int = 0):
        if not self.can_pop(index):
            raise SimulationError(f"{self.name}: pop from empty queue {index}")
        self.stats.pops += 1
        value = self.queues[index].popleft()
        if self.sink.enabled:
            self.sink.fifo_occupancy(
                self.name, index, cycle, len(self.queues[index])
            )
        if self.engine is not None:
            self.engine.fifo_popped(self, index)
        return value

    def occupancy(self, index: int) -> int:
        return len(self.queues[index])

    def reset(self, cycle: int = 0) -> None:
        """Flush all queues (accelerator start signal)."""
        for index, queue in enumerate(self.queues):
            had = bool(queue)
            self.stats.flushed += len(queue)
            queue.clear()
            if had and self.sink.enabled:
                self.sink.fifo_occupancy(self.name, index, cycle, 0)
        if self.engine is not None:
            self.engine.fifo_reset(self)

    def reset_run(self) -> None:
        """Start-of-run reset: flush queues and zero the stall counters.

        ``AcceleratorSystem.run`` calls this so a reused system reports
        only the current run's FIFO activity instead of accumulating
        across invocations of ``run()``.
        """
        for queue in self.queues:
            queue.clear()
        self.stats = FifoStats(
            depth=self.channel.depth, n_queues=self.channel.n_channels
        )

    #: BRAM bits occupied by this buffer (32-bit slots x depth x queues).
    @property
    def bram_bits(self) -> int:
        slots = self.channel.fifo_slots_per_value
        return 32 * slots * self.channel.depth * self.channel.n_channels
