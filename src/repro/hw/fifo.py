"""Hardware FIFO buffers connecting pipeline stages (paper Fig. 2).

One :class:`FifoBuffer` materialises one compiler
:class:`~repro.ir.primitives.Channel`: ``n_channels`` independent queues
(one per consumer worker), each ``depth`` entries deep.  Pushes to a full
queue and pops from an empty queue stall the issuing FSM — the mechanism
that lets the pipeline tolerate variable memory latency (Section 2.2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..ir.primitives import Channel


@dataclass
class FifoStats:
    """Push/pop/stall counters for one FIFO buffer."""

    pushes: int = 0
    pops: int = 0
    full_stall_cycles: int = 0
    empty_stall_cycles: int = 0
    max_occupancy: int = 0


class FifoBuffer:
    """Bounded multi-queue FIFO with stall accounting."""

    def __init__(self, channel: Channel) -> None:
        self.channel = channel
        self.queues: list[deque] = [deque() for _ in range(channel.n_channels)]
        self.stats = FifoStats()

    # -- capacity ----------------------------------------------------------------

    def can_push(self, index: int) -> bool:
        return len(self.queues[index]) < self.channel.depth

    def can_push_broadcast(self) -> bool:
        return all(len(q) < self.channel.depth for q in self.queues)

    def can_pop(self, index: int) -> bool:
        return bool(self.queues[index])

    # -- data ---------------------------------------------------------------------

    def push(self, index: int, value) -> None:
        assert self.can_push(index), "push to full FIFO"
        self.queues[index].append(value)
        self.stats.pushes += 1
        self.stats.max_occupancy = max(
            self.stats.max_occupancy, len(self.queues[index])
        )

    def push_broadcast(self, value) -> None:
        assert self.can_push_broadcast(), "broadcast to full FIFO"
        for queue in self.queues:
            queue.append(value)
            self.stats.max_occupancy = max(self.stats.max_occupancy, len(queue))
        self.stats.pushes += len(self.queues)

    def pop(self, index: int):
        assert self.can_pop(index), "pop from empty FIFO"
        self.stats.pops += 1
        return self.queues[index].popleft()

    def occupancy(self, index: int) -> int:
        return len(self.queues[index])

    def reset(self) -> None:
        """Flush all queues (accelerator start signal)."""
        for queue in self.queues:
            queue.clear()

    #: BRAM bits occupied by this buffer (32-bit slots x depth x queues).
    @property
    def bram_bits(self) -> int:
        slots = self.channel.fifo_slots_per_value
        return 32 * slots * self.channel.depth * self.channel.n_channels
