"""Cycle-accurate hardware substrate: workers, FIFOs, cache, MIPS core."""

from ..telemetry.events import MemoryTraceSink, NULL_SINK, NullSink, TraceSink
from .cache import CacheStats, DirectMappedCache
from .engine import EventScheduler
from .fifo import FifoBuffer, FifoStats
from .mips_core import MipsResult, run_on_mips
from .specialize import SpecializedProgram, SpecializedWorker, specialized_for
from .system import ENGINES, AcceleratorSystem, SimReport
from .worker import HwWorker, WorkerStats

__all__ = [
    "DirectMappedCache", "CacheStats",
    "FifoBuffer", "FifoStats",
    "AcceleratorSystem", "SimReport", "ENGINES", "EventScheduler",
    "HwWorker", "WorkerStats",
    "SpecializedProgram", "SpecializedWorker", "specialized_for",
    "run_on_mips", "MipsResult",
    "TraceSink", "NullSink", "NULL_SINK", "MemoryTraceSink",
]
