"""MIPS soft-core baseline cost model (the paper's CPU data point).

An in-order, single-issue 32-bit soft core with a hardware FPU: every IR
instruction charges a base cost, taken branches pay a pipeline-flush
penalty, and every data access goes through the same direct-mapped D-cache
model the accelerators use.  The instruction cache is assumed to always
hit (the kernels are small loops, and the paper's I-cache has 512 lines of
128 B — far larger than any kernel).

Values are computed by the functional interpreter; this module only adds
up cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..interp.interpreter import Interpreter
from ..interp.memory import Memory
from ..ir.function import Function
from ..ir.instructions import (
    GEP,
    BinaryOp,
    Call,
    Cast,
    CondBranch,
    Instruction,
    Jump,
    Load,
    Phi,
    Ret,
    Store,
)
from ..ir.module import Module
from .cache import DirectMappedCache

#: Base cycles per IR op on the soft core (excluding cache time).
#:
#: Calibrated against the paper's Fig. 4 baseline: the Tiger-MIPS-class
#: soft core LegUp systems use is single-issue, in-order, with no result
#: forwarding on multi-cycle units and a multi-cycle soft FPU, which is
#: why plain HLS already beats it by ~1.85x geomean.
_MIPS_BINOP_CYCLES = {
    "add": 1, "sub": 1, "and": 1, "or": 1, "xor": 1, "shl": 1,
    "ashr": 1, "lshr": 1,
    "mul": 4, "sdiv": 24, "udiv": 24, "srem": 24, "urem": 24,
    "fadd": 7, "fsub": 7, "fmul": 9, "fdiv": 32,
}
_TAKEN_BRANCH_PENALTY = 3  # fetch bubble on every taken control transfer
_CALL_OVERHEAD = 5  # jal + argument moves + prologue


def _base_cost(inst: Instruction) -> int:
    if isinstance(inst, BinaryOp):
        return _MIPS_BINOP_CYCLES[inst.opcode]
    if isinstance(inst, (Load, Store)):
        return 2  # address generation + issue; cache time added separately
    if isinstance(inst, GEP):
        # Address arithmetic: shift/multiply plus add per index level
        # (the accelerator does the same in one fused address unit).
        return 1 + len(inst.indices)
    if isinstance(inst, (Jump, CondBranch)):
        return 1
    if isinstance(inst, Call):
        return _CALL_OVERHEAD
    if isinstance(inst, Ret):
        return 3
    if isinstance(inst, Phi):
        return 1  # the register moves the compiler places on the edges
    if isinstance(inst, Cast):
        return 3 if inst.opcode in ("sitofp", "fptosi") else 1
    return 1


@dataclass
class MipsResult:
    """Cycles, instruction count and result of one soft-core run."""

    cycles: int
    instructions: int
    return_value: int | float | None
    cache: DirectMappedCache


class _TracingMemory(Memory):
    """Memory that charges a cache model for every access."""

    def __init__(self, base: Memory, sink) -> None:
        # Share the underlying buffer: we *are* the same memory image.
        self.__dict__.update(base.__dict__)
        self._sink = sink

    def read_bytes(self, addr: int, size: int) -> bytes:
        self._sink(addr, False)
        return Memory.read_bytes(self, addr, size)

    def write_bytes(self, addr: int, data: bytes) -> None:
        self._sink(addr, True)
        Memory.write_bytes(self, addr, data)


def run_on_mips(
    module: Module,
    entry: str | Function,
    args: list[int | float],
    memory: Memory,
    cache: DirectMappedCache | None = None,
    global_addresses: dict[str, int] | None = None,
) -> MipsResult:
    """Execute ``entry`` on the soft-core model; returns cycles and result."""
    cache = cache if cache is not None else DirectMappedCache(ports=1)
    state = {"cycles": 0, "instructions": 0}

    def on_access(addr: int, is_write: bool) -> None:
        ready = cache.access(addr, is_write, state["cycles"])
        state["cycles"] = ready

    traced = _TracingMemory(memory, on_access)

    def on_execute(inst: Instruction) -> None:
        state["cycles"] += _base_cost(inst)
        state["instructions"] += 1

    def on_edge(src, dst) -> None:
        state["cycles"] += _TAKEN_BRANCH_PENALTY

    interp = Interpreter(
        module, traced, on_execute=on_execute, on_edge=on_edge,
        global_addresses=global_addresses,
    )
    value = interp.call(entry, args)
    return MipsResult(
        cycles=state["cycles"],
        instructions=state["instructions"],
        return_value=value,
        cache=cache,
    )
