"""The accelerator system: workers + FIFOs + shared cache + clock loop.

Simulates the dashed box of the paper's Fig. 2.  The parent (wrapper)
function runs as a hardware module too; ``parallel_fork`` brings worker
modules out of reset, ``parallel_join`` waits for their finish signals and
re-arms the FIFO buffers for the next invocation (relevant for kernels
that invoke the accelerator once per outer-loop iteration, like the
1D Gaussian blur rows).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..faults.plan import NULL_INJECTOR
from ..faults.watchdog import WATCHDOG
from ..interp.interpreter import _place_globals
from ..interp.memory import Memory
from ..ir.function import Function
from ..ir.instructions import ParallelFork
from ..ir.module import Module
from ..ir.primitives import Channel, ChannelPlan
from ..rtl.schedule import FunctionSchedule, schedule_function
from ..telemetry.events import NULL_SINK, TraceSink
from .cache import CacheStats, DirectMappedCache
from .engine import EventScheduler
from .fifo import FifoBuffer
from .specialize import SpecializedWorker
from .worker import HwWorker, WorkerStats
from ..pipeline.transform import TaskInfo

#: Valid values for ``AcceleratorSystem(engine=...)``.
ENGINES = ("event", "lockstep", "specialized")


@dataclass
class SimReport:
    """Outcome of one accelerator run."""

    cycles: int
    return_value: int | float | None
    worker_stats: dict[str, WorkerStats]
    cache_stats: CacheStats
    fifo_stats: dict[str, object]
    invocations: int
    #: Final liveout register file (liveout id -> value), identical across
    #: engines; its checksum is the cheap cross-engine equivalence probe.
    liveouts: dict[int, int | float] = field(default_factory=dict)

    @property
    def total_ops(self) -> int:
        return sum(
            sum(stats.ops_executed.values()) for stats in self.worker_stats.values()
        )

    @property
    def stall_breakdown(self) -> dict[str, dict[str, int]]:
        """Per-worker cycles by stall category (cycle-conserving).

        For every worker the category counts sum exactly to ``cycles``:
        each simulated cycle of each worker lands in exactly one bucket
        (see :class:`~repro.telemetry.events.CycleCategory`).
        """
        return {
            name: stats.breakdown() for name, stats in self.worker_stats.items()
        }

    def liveouts_checksum(self) -> str:
        """Content hash of (liveouts, return value) — equal across engines
        iff the runs were functionally identical."""
        body = json.dumps(
            {
                "liveouts": {str(k): self.liveouts[k] for k in sorted(self.liveouts)},
                "return_value": self.return_value,
            },
            sort_keys=True,
        )
        return hashlib.sha256(body.encode()).hexdigest()

    def to_dict(self) -> dict:
        """Complete JSON-ready form of the run outcome.

        This is the one public serialisation of a simulation — harness
        and service call sites should use it instead of picking fields
        ad hoc.  ``from_dict(to_dict(r))`` rebuilds an equal report.
        """
        return {
            "cycles": self.cycles,
            "return_value": self.return_value,
            "invocations": self.invocations,
            "worker_stats": {
                name: stats.to_dict()
                for name, stats in self.worker_stats.items()
            },
            "cache_stats": self.cache_stats.to_dict(),
            "fifo_stats": {
                name: stats.to_dict()
                for name, stats in self.fifo_stats.items()
            },
            "liveouts": {
                str(k): self.liveouts[k] for k in sorted(self.liveouts)
            },
            "liveouts_checksum": self.liveouts_checksum(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimReport":
        """Rebuild a report from :meth:`to_dict` output.

        Unknown keys are dropped (forward compatibility, same policy as
        :meth:`repro.dse.evaluate.EvalResult.from_dict`); the stored
        ``liveouts_checksum`` is derived state and recomputed on demand.
        """
        from .fifo import FifoStats

        return cls(
            cycles=data["cycles"],
            return_value=data.get("return_value"),
            worker_stats={
                name: WorkerStats.from_dict(stats)
                for name, stats in (data.get("worker_stats") or {}).items()
            },
            cache_stats=CacheStats.from_dict(data.get("cache_stats") or {}),
            fifo_stats={
                name: FifoStats.from_dict(stats)
                for name, stats in (data.get("fifo_stats") or {}).items()
            },
            invocations=data.get("invocations", 0),
            liveouts={
                int(k): v for k, v in (data.get("liveouts") or {}).items()
            },
        )


class AcceleratorSystem:
    """Container wiring workers, FIFO buffers and the shared D-cache."""

    def __init__(
        self,
        module: Module,
        memory: Memory,
        channels: ChannelPlan | None = None,
        cache: DirectMappedCache | None = None,
        global_addresses: dict[str, int] | None = None,
        max_cycles: int = 500_000_000,
        private_caches: bool = False,
        sink: TraceSink | None = None,
        engine: str = "event",
        injector=None,
        monitor=None,
    ) -> None:
        """``private_caches`` models the memory-partitioning option of the
        paper's Appendix B.1: each worker gets its own single-ported cache
        slice instead of contending for the shared 8-port cache.  (Safe
        because CGPA's partition keeps aliasing memory instructions in one
        stage; data always comes from the shared functional memory.)

        ``engine`` selects the clock loop: ``"event"`` (default) jumps the
        clock between worker wake events (:mod:`repro.hw.engine`),
        ``"lockstep"`` ticks every worker every cycle, and
        ``"specialized"`` runs the event clock over workers whose FSMs
        were compiled into closures (:mod:`repro.hw.specialize`).  All
        three produce bit-identical :class:`SimReport`\\ s; lockstep is
        kept as the differential-testing oracle.

        ``injector`` applies one :class:`~repro.faults.plan.FaultPlan`
        through the hardware models' injection hooks (default: the
        zero-overhead null injector).  ``monitor`` is an optional
        :class:`~repro.faults.monitor.InvariantMonitor` run every
        ``interval`` cycles and once at end of run."""
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected {ENGINES}")
        self.engine_kind = engine
        self._worker_cls = SpecializedWorker if engine == "specialized" else HwWorker
        self._scheduler: EventScheduler | None = None
        self.module = module
        self.memory = memory
        #: Telemetry receiver; the do-nothing default costs one boolean
        #: check per instrumented event site.
        self.sink: TraceSink = sink if sink is not None else NULL_SINK
        #: Fault-injection hooks, propagated to every cache and FIFO the
        #: system creates (same null-object pattern as the trace sink).
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.monitor = monitor
        self.cache = cache if cache is not None else DirectMappedCache()
        self.cache.sink = self.sink
        self.cache.injector = self.injector
        self.private_caches = private_caches
        self._private_cache_pool: list[DirectMappedCache] = []
        self.max_cycles = max_cycles
        if global_addresses is not None:
            self.global_addresses = global_addresses
        else:
            self.global_addresses = _place_globals(module, memory)
        self._schedules: dict[int, FunctionSchedule] = {}
        self._fifos: dict[int, FifoBuffer] = {}
        if channels is not None:
            for channel in channels:
                fifo = FifoBuffer(channel, sink=self.sink)
                fifo.injector = self.injector
                self._fifos[id(channel)] = fifo
        self.liveout_regs: dict[int, int | float] = {}
        self._workers: list[HwWorker] = []
        self._loop_groups: dict[int, list[HwWorker]] = {}
        self.invocations = 0

    # -- infrastructure ------------------------------------------------------------

    def schedule_for(self, function: Function) -> FunctionSchedule:
        key = id(function)
        if key not in self._schedules:
            self._schedules[key] = schedule_function(function)
        return self._schedules[key]

    def fifo_for(self, channel: Channel) -> FifoBuffer:
        if id(channel) not in self._fifos:
            fifo = FifoBuffer(channel, sink=self.sink)
            fifo.injector = self.injector
            fifo.engine = self._scheduler
            self._fifos[id(channel)] = fifo
        return self._fifos[id(channel)]

    def cache_for_new_worker(self) -> DirectMappedCache:
        """Cache slice for a newly created worker."""
        if not self.private_caches:
            return self.cache
        # One single-ported slice per worker, each a quarter of the shared
        # geometry (the BRAM budget is split, not multiplied).
        slice_ = DirectMappedCache(
            n_lines=max(self.cache.n_lines // 4, 16),
            block_size=self.cache.block_size,
            ports=1,
            hit_latency=self.cache.hit_latency,
            miss_penalty=self.cache.miss_penalty,
        )
        slice_.sink = self.sink
        slice_.injector = self.injector
        self._private_cache_pool.append(slice_)
        return slice_

    # -- fork / join ------------------------------------------------------------------

    def fork_worker(
        self, inst: ParallelFork, liveins: list[int | float], cycle: int
    ) -> None:
        info = inst.task.task_info
        worker_id = inst.worker_id if inst.worker_id is not None else 0
        args = list(liveins)
        if isinstance(info, TaskInfo) and info.is_parallel:
            args.append(worker_id)
        name = f"{inst.task.name}#w{worker_id}"
        worker = self._worker_cls(
            name,
            inst.task,
            args,
            self,
            worker_id=worker_id,
            start_cycle=cycle + 1,
        )
        worker.loop_id = inst.loop_id
        self._register_worker(worker)
        self._loop_groups.setdefault(inst.loop_id, []).append(worker)

    def _register_worker(self, worker: HwWorker) -> None:
        worker.seq = len(self._workers)
        worker.engine = self._scheduler
        self._workers.append(worker)

    def join_ready(self, loop_id: int) -> bool:
        return all(w.done for w in self._loop_groups.get(loop_id, []))

    def finish_join(self, loop_id: int, cycle: int = 0) -> None:
        """Join completed: retire workers and re-arm FIFOs for reinvocation."""
        self._loop_groups.pop(loop_id, None)
        self.invocations += 1
        for fifo in self._fifos.values():
            fifo.reset(cycle)

    def worker_finished(self, worker: HwWorker) -> None:
        # Lockstep polls finish signals via join_ready; the event engine
        # turns them into join wake events.
        if self._scheduler is not None:
            self._scheduler.worker_done(worker)

    # -- clock loop ----------------------------------------------------------------------

    def _reset_run_state(self) -> None:
        """Return the system to power-on state before a (re)run.

        Without this a second ``run()`` on the same system double-counts:
        cache stats, FIFO stats, liveout registers and the invocation
        counter all carried over from the previous run.
        """
        self.cache.reset()
        self._private_cache_pool.clear()
        for fifo in self._fifos.values():
            fifo.reset_run()
        self.liveout_regs.clear()
        self.invocations = 0
        self._workers = []
        self._loop_groups.clear()
        if self.injector.enabled:
            self.injector.reset()
            self.injector.attach(self)
        if self.monitor is not None:
            self.monitor.start_run()

    def run(self, entry: str | Function, args: list[int | float]) -> SimReport:
        if isinstance(entry, str):
            entry = self.module.get_function(entry)
        self._reset_run_state()
        if self.engine_kind != "lockstep":
            self._scheduler = EventScheduler(self)
            for fifo in self._fifos.values():
                fifo.engine = self._scheduler
        main = self._worker_cls(f"{entry.name}#top", entry, args, self)
        self._register_worker(main)
        if self.sink.enabled:
            self.sink.begin_run([main.name])

        try:
            if self._scheduler is not None:
                cycles = self._scheduler.run(main)
            else:
                cycles = self._run_lockstep(main)
        finally:
            self._scheduler = None
            for fifo in self._fifos.values():
                fifo.engine = None

        if self.monitor is not None:
            # Final conservation check, while main is still in the worker
            # list (the token-conservation sums include its FIFO traffic).
            self.monitor.check(self, cycles, final=True)
        self._workers.remove(main)
        if self.sink.enabled:
            self.sink.end_run(cycles)
        worker_stats = {main.name: main.stats}
        for worker in self._workers:
            worker_stats[worker.name] = worker.stats
        fifo_stats = {f.name: f.stats for f in self._fifos.values()}
        report = SimReport(
            cycles=cycles,
            return_value=main.return_value,
            worker_stats=worker_stats,
            cache_stats=self._aggregate_cache_stats(),
            fifo_stats=fifo_stats,
            invocations=self.invocations,
            liveouts=dict(self.liveout_regs),
        )
        self._workers = []
        return report

    def _run_lockstep(self, main: HwWorker) -> int:
        """Reference engine: tick every worker on every cycle.

        Kept as the differential-testing oracle for the event-driven
        engine (``tests/test_engine_equivalence.py``); select it with
        ``AcceleratorSystem(..., engine="lockstep")``.
        """
        cycle = 0
        monitor = self.monitor
        next_check = monitor.interval if monitor is not None else 0
        while not main.done:
            for worker in list(self._workers):
                worker.tick(cycle)
            if not main.done and self._deadlocked(cycle):
                # Exact detection, at the same cycle the event engine
                # reports "no runnable worker and no pending event".
                raise WATCHDOG.deadlock(self, cycle)
            cycle += 1
            if cycle > self.max_cycles:
                raise WATCHDOG.budget_exceeded(self, cycle)
            if monitor is not None and cycle >= next_check:
                monitor.check(self, cycle)
                next_check = (cycle // monitor.interval + 1) * monitor.interval
        return cycle

    def _deadlocked(self, cycle: int) -> bool:
        """True when every live worker is blocked on another worker's
        action (the lockstep mirror of the event engine's "every worker
        parked at NEVER")."""
        for worker in self._workers:
            if worker.done:
                continue
            if not worker.event_blocked(cycle):
                return False
        return True

    def _aggregate_cache_stats(self) -> CacheStats:
        """Report-level cache summary covering every cache the run used.

        With ``private_caches`` the shared cache sits idle and all traffic
        goes through the per-worker slices; reading only ``cache.stats``
        silently dropped every one of those accesses.
        """
        if not self._private_cache_pool:
            return self.cache.stats
        total = CacheStats()
        total.absorb(self.cache.stats)
        for slice_ in self._private_cache_pool:
            total.absorb(slice_.stats)
        return total

    @property
    def fifos(self) -> dict[int, FifoBuffer]:
        return self._fifos
