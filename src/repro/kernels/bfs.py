"""bfs: breadth-first search over a CSR graph (graph analytics).

Second-wave irregular kernel (ROADMAP item 4).  The loop is driven by a
*worklist* — the frontier queue grows while it is being drained, so the
trip count, the memory footprint and even the iteration order are all
data-dependent.  The whole queue/visited machinery is one big sequential
dependence cycle (each dequeue depends on earlier enqueues through
memory), which is exactly why classic HLS serialises this loop; CGPA
still extracts pipeline parallelism from the side computation: the
per-vertex adjacency signature (a multi-round hash over the read-only
CSR arrays) is side-effect-free and becomes the parallel stage, fed by
the dequeue stage and drained by the signature reduction.  Pipeline
shape: S-P-S.
"""

from __future__ import annotations

from .base import RNG_SOURCE, KernelSpec, workload_rng

SOURCE = (
    RNG_SOURCE
    + """
void* malloc(int n);

unsigned kargs[8];

void setup(int seed, int nverts, int degree) {
    rng_state = seed * 2654435761 + 12345;
    int* rowptr = (int*)malloc((nverts + 1) * sizeof(int));
    int nedges = 0;
    rowptr[0] = 0;
    for (int i = 0; i < nverts; i++) {
        int count = rnd() % (2 * degree + 1);
        nedges = nedges + count;
        rowptr[i + 1] = nedges;
    }
    int* col = (int*)malloc((nedges + 1) * sizeof(int));
    for (int k = 0; k < nedges; k++)
        col[k] = rnd() % nverts;
    int* dist = (int*)malloc(nverts * sizeof(int));
    for (int v = 0; v < nverts; v++)
        dist[v] = -1;
    int* queue = (int*)malloc(nverts * sizeof(int));
    dist[0] = 0;
    queue[0] = 0;
    kargs[0] = (unsigned)rowptr;
    kargs[1] = (unsigned)col;
    kargs[2] = (unsigned)dist;
    kargs[3] = (unsigned)queue;
    kargs[4] = (unsigned)nverts;
}

int kernel(int* rowptr, int* col, int* dist, int* queue, int nverts) {
    int head = 0;
    int tail = 1;
    int sig = 0;
    while (head < tail) {
        int u = queue[head];
        head++;
        int begin = rowptr[u];
        int end = rowptr[u + 1];
        /* parallel section: adjacency signature over the read-only CSR
           arrays (the expensive per-vertex analytics payload). */
        int h = u * 0x9e3779b1;
        for (int j = begin; j < end; j++) {
            int c = col[j] + 40503;
            h = (h ^ c) * 0x45d9f3b;
            h = h ^ (h >> 15);
        }
        sig += h;
        /* sequential section: frontier expansion — enqueues feed later
           dequeues, the loop-carried cycle that keeps this stage serial. */
        int du = dist[u];
        for (int j = begin; j < end; j++) {
            int v = col[j];
            if (dist[v] < 0) {
                dist[v] = du + 1;
                queue[tail] = v;
                tail++;
            }
        }
    }
    return sig;
}

double check(void) {
    int* dist = (int*)kargs[2];
    int nverts = (int)kargs[4];
    double sum = 0.0;
    int reached = 0;
    for (int v = 0; v < nverts; v++) {
        if (dist[v] >= 0) {
            reached++;
            sum += (double)(dist[v] * 7 + v % 13);
        }
    }
    return sum + 1000.0 * reached;
}

/* Binds kernel arguments for whole-module pointer analysis (never run). */
void driver(void) {
    setup(1, 10, 2);
    kernel((int*)kargs[0], (int*)kargs[1], (int*)kargs[2],
           (int*)kargs[3], (int)kargs[4]);
}
"""
)


def workload(seed: int) -> list[int]:
    """Seeded graph shapes: vertex count and mean degree vary per seed.

    Degree spans sparse chains (frontier mostly dies out) to well-mixed
    expanders (frontier floods the whole graph), so the worklist length —
    and with it every backend's cycle count — differs meaningfully
    between seeds.
    """
    rng = workload_rng(seed)
    nverts = rng.randrange(32, 193)
    degree = rng.randrange(1, 6)
    return [seed & 0x7FFFFFFF, nverts, degree]


BFS = KernelSpec(
    name="bfs",
    domain="Graph Analytics",
    description=(
        "worklist breadth-first search over a CSR graph with per-vertex"
        " adjacency signatures"
    ),
    source=SOURCE,
    accel_function="kernel",
    measure_entry="kernel",
    setup_function="setup",
    setup_args=[1, 96, 3],
    n_kernel_args=5,
    check_function="check",
    expected_p1="S-P-S",
    expected_p2=None,
    workload_generator=workload,
)
