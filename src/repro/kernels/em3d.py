"""em3d: electromagnetic wave propagation on a bipartite graph (Olden).

The paper's motivating example (Fig. 1): the outer loop walks a linked
list of E-nodes and updates each node's value from its H-node neighbours.
Recursive data structure, irregular memory accesses, non-affine inner
loop — CGPA's partition puts the traversal in a sequential stage (S-P,
Table 2); P2 instead replicates the traversal into all workers.
"""

from __future__ import annotations

from .base import RNG_SOURCE, KernelSpec, PaperNumbers, workload_rng

SOURCE = (
    RNG_SOURCE
    + """
typedef struct node {
    double value;
    int from_count;
    struct node** from_nodes;
    double* coeffs;
    struct node* next;
} node_t;

void* malloc(int n);

unsigned kargs[4];

node_t* build_h_list(int n) {
    node_t* head = 0;
    for (int i = 0; i < n; i++) {
        node_t* nh = (node_t*)malloc(sizeof(node_t));
        nh->value = 0.001 * (rnd() % 1000);
        nh->from_count = 0;
        nh->from_nodes = 0;
        nh->coeffs = 0;
        nh->next = head;
        head = nh;
    }
    return head;
}

node_t* build_e_list(int n, int degree, node_t* h_head, int n_h) {
    node_t* head = 0;
    for (int i = 0; i < n; i++) {
        node_t* ne = (node_t*)malloc(sizeof(node_t));
        ne->value = 0.001 * (rnd() % 1000);
        ne->from_count = degree;
        ne->from_nodes = (node_t**)malloc(degree * sizeof(node_t*));
        ne->coeffs = (double*)malloc(degree * sizeof(double));
        for (int j = 0; j < degree; j++) {
            /* pick a pseudo-random H node by walking the list */
            int steps = rnd() % n_h;
            node_t* cursor = h_head;
            for (int s = 0; s < steps; s++) {
                cursor = cursor->next;
                if (!cursor) cursor = h_head;
            }
            ne->from_nodes[j] = cursor;
            ne->coeffs[j] = 0.001 * (rnd() % 2000) - 1.0;
        }
        ne->next = head;
        head = ne;
    }
    return head;
}

void setup(int n_e, int n_h, int degree) {
    node_t* h_head = build_h_list(n_h);
    node_t* e_head = build_e_list(n_e, degree, h_head, n_h);
    kargs[0] = (unsigned)e_head;
}

void kernel(node_t* nodelist) {
    for ( ; nodelist; nodelist = nodelist->next) {
        for (int i = 0; i < nodelist->from_count; i++) {
            node_t* from = nodelist->from_nodes[i];
            double coeff = nodelist->coeffs[i];
            double value = from->value;
            nodelist->value -= coeff * value;
        }
    }
}

double check(void) {
    node_t* nodelist = (node_t*)kargs[0];
    double sum = 0.0;
    for ( ; nodelist; nodelist = nodelist->next)
        sum += nodelist->value;
    return sum;
}

/* Binds kernel arguments for whole-module pointer analysis (never run). */
void driver(void) {
    setup(8, 8, 2);
    kernel((node_t*)kargs[0]);
}
"""
)

def workload(seed: int) -> list[int]:
    """Seeded bipartite-graph shapes: E/H node counts and in-degree (the
    parallel stage's gather width follows ``degree``)."""
    rng = workload_rng(seed)
    return [rng.randrange(64, 257), rng.randrange(48, 193),
            rng.randrange(2, 11)]


EM3D = KernelSpec(
    name="em3d",
    domain="3D Simulation",
    description=(
        "updating value for each node in a linked-list by subtracting "
        "weighted value in from_nodes"
    ),
    source=SOURCE,
    accel_function="kernel",
    measure_entry="kernel",
    setup_function="setup",
    setup_args=[192, 128, 8],
    n_kernel_args=1,
    check_function="check",
    expected_p1="S-P",
    expected_p2="P",
    paper=PaperNumbers(
        speedup_legup=1.7,
        speedup_cgpa=5.6,
        legup_aluts=623,
        cgpa_aluts=2842,
        legup_power_mw=72,
        cgpa_power_mw=292,
        legup_energy_uj=1.66,
        cgpa_energy_uj=2.24,
        cgpa_p2_aluts=2624,
        cgpa_p2_energy_uj=2.49,
    ),
    workload_generator=workload,
)
