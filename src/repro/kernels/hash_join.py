"""hash-join: probe phase of an in-memory equi-join (database).

Second-wave irregular kernel (ROADMAP item 4).  ``setup`` plays the
build phase — it hashes the build relation into an array of bucket
chains — and the accelerated loop is the probe phase: for every tuple of
the probe relation (a linked list, the heavyweight traversal stage),
hash its key and walk the matching bucket chain counting matches and
summing payloads.  Chain lengths are data-dependent (hash skew) and the
chain walk is a pointer chase into the read-only build table, so the
whole probe is side-effect-free and becomes the parallel stage; the
match/payload aggregation is the sequential reduction.  Pipeline shape:
S-P-S — the same partition the paper's Hash-indexing kernel gets, but
with the *read* side (probe) under test instead of the write side
(build).
"""

from __future__ import annotations

from .base import RNG_SOURCE, KernelSpec, workload_rng

SOURCE = (
    RNG_SOURCE
    + """
typedef struct tup {
    int key;
    int payload;
    struct tup* next;
    struct tup* bnext;
} tup_t;

void* malloc(int n);

unsigned kargs[8];

void setup(int seed, int nbuild, int nprobe, int nbuckets) {
    rng_state = seed * 2654435761 + 12345;
    int keyspace = nbuild / 2 + 1;
    tup_t** buckets = (tup_t**)malloc(nbuckets * sizeof(tup_t*));
    for (int b = 0; b < nbuckets; b++)
        buckets[b] = 0;
    for (int i = 0; i < nbuild; i++) {
        tup_t* t = (tup_t*)malloc(sizeof(tup_t));
        t->key = rnd() % keyspace;
        t->payload = rnd() % 1000;
        t->next = 0;
        int h = t->key;
        h = h ^ (h >> 12);
        h = h * 0x2545f491;
        h = h ^ (h >> 9);
        if (h < 0) h = -h;
        h = h % nbuckets;
        t->bnext = buckets[h];
        buckets[h] = t;
    }
    tup_t* probe = 0;
    for (int i = 0; i < nprobe; i++) {
        tup_t* t = (tup_t*)malloc(sizeof(tup_t));
        t->key = rnd() % keyspace;
        t->payload = rnd() % 1000;
        t->bnext = 0;
        t->next = probe;
        probe = t;
    }
    kargs[0] = (unsigned)probe;
    kargs[1] = (unsigned)buckets;
    kargs[2] = (unsigned)nbuckets;
}

int kernel(tup_t* probe, tup_t** buckets, int nbuckets) {
    int matched = 0;
    int acc = 0;
    for ( ; probe; probe = probe->next) {
        /* parallel section: hash the probe key and walk the bucket
           chain (read-only pointer chase, data-dependent length). */
        int key = probe->key;
        int h = key;
        h = h ^ (h >> 12);
        h = h * 0x2545f491;
        h = h ^ (h >> 9);
        if (h < 0) h = -h;
        h = h % nbuckets;
        int hits = 0;
        int psum = 0;
        for (tup_t* t = buckets[h]; t; t = t->bnext) {
            if (t->key == key) {
                hits++;
                psum += t->payload;
            }
        }
        /* sequential section: join-result aggregation. */
        matched += hits;
        acc += psum ^ (probe->payload & 255);
    }
    return matched * 65536 + (acc & 65535);
}

double check(void) {
    /* Independent nested-loop join (no hashing) over the same data. */
    tup_t* probe = (tup_t*)kargs[0];
    tup_t** buckets = (tup_t**)kargs[1];
    int nbuckets = (int)kargs[2];
    double sum = 0.0;
    for ( ; probe; probe = probe->next) {
        for (int b = 0; b < nbuckets; b++) {
            for (tup_t* t = buckets[b]; t; t = t->bnext) {
                if (t->key == probe->key)
                    sum += (double)(t->payload % 997) + 0.5;
            }
        }
    }
    return sum;
}

/* Binds kernel arguments for whole-module pointer analysis (never run). */
void driver(void) {
    setup(1, 8, 6, 4);
    kernel((tup_t*)kargs[0], (tup_t**)kargs[1], (int)kargs[2]);
}
"""
)


def workload(seed: int) -> list[int]:
    """Seeded table shapes: build/probe cardinality and bucket count.

    The build:bucket ratio controls chain length (hash skew), so seeds
    range from near-perfect hashing to heavily chained buckets — the
    parallel stage's pointer-chase depth changes with every seed.
    """
    rng = workload_rng(seed)
    nbuild = rng.randrange(32, 193)
    nprobe = rng.randrange(24, 129)
    nbuckets = rng.choice([4, 8, 16, 32])
    return [seed & 0x7FFFFFFF, nbuild, nprobe, nbuckets]


HASH_JOIN = KernelSpec(
    name="hash-join",
    domain="Database",
    description=(
        "hash-join probe: per-tuple key hash plus a data-dependent bucket"
        " chain walk against the build table"
    ),
    source=SOURCE,
    accel_function="kernel",
    measure_entry="kernel",
    setup_function="setup",
    setup_args=[1, 96, 64, 16],
    n_kernel_args=3,
    check_function="check",
    expected_p1="S-P-S",
    expected_p2=None,
    workload_generator=workload,
)
