"""K-means: cluster-membership assignment (Rodinia).

Appendix A.1's case study: the loop over data points calls
``findNearestPoint`` (a pure distance computation — the *parallel*
section), then updates ``membership``, ``new_centers`` and the counters
(the *sequential* section).  The induction variable is the lightweight
*replicable* section, duplicated into every worker.  Pipeline shape: P-S
(Table 2), with the parallel stage first — cluster indices flow through a
4-channel FIFO into the sequential updater, consumed round-robin.
"""

from __future__ import annotations

from .base import RNG_SOURCE, KernelSpec, PaperNumbers, workload_rng

SOURCE = (
    RNG_SOURCE
    + """
void* malloc(int n);

unsigned kargs[8];

double dist2(double* a, double* b, int nfeatures) {
    double s = 0.0;
    for (int f = 0; f < nfeatures; f++) {
        double d = a[f] - b[f];
        s += d * d;
    }
    return s;
}

int findNearestPoint(double* point, int nfeatures, double* clusters, int nclusters) {
    int index = 0;
    double best = dist2(point, clusters, nfeatures);
    for (int c = 1; c < nclusters; c++) {
        double d = dist2(point, clusters + c * nfeatures, nfeatures);
        if (d < best) {
            best = d;
            index = c;
        }
    }
    return index;
}

void setup(int npoints, int nclusters, int nfeatures) {
    double* nodes = (double*)malloc(npoints * nfeatures * sizeof(double));
    double* clusters = (double*)malloc(nclusters * nfeatures * sizeof(double));
    int* membership = (int*)malloc(npoints * sizeof(int));
    double* new_centers = (double*)malloc(nclusters * nfeatures * sizeof(double));
    int* new_centers_len = (int*)malloc(nclusters * sizeof(int));
    for (int i = 0; i < npoints * nfeatures; i++)
        nodes[i] = 0.001 * (rnd() % 1000);
    for (int c = 0; c < nclusters * nfeatures; c++)
        clusters[c] = 0.001 * (rnd() % 1000);
    for (int i = 0; i < npoints; i++)
        membership[i] = -1;
    for (int c = 0; c < nclusters * nfeatures; c++)
        new_centers[c] = 0.0;
    for (int c = 0; c < nclusters; c++)
        new_centers_len[c] = 0;
    kargs[0] = (unsigned)nodes;
    kargs[1] = (unsigned)clusters;
    kargs[2] = (unsigned)membership;
    kargs[3] = (unsigned)new_centers;
    kargs[4] = (unsigned)new_centers_len;
    kargs[5] = (unsigned)npoints;
    kargs[6] = (unsigned)nclusters;
    kargs[7] = (unsigned)nfeatures;
}

int kernel(double* nodes, double* clusters, int* membership,
           double* new_centers, int* new_centers_len,
           int npoints, int nclusters, int nfeatures) {
    int delta = 0;
    for (int i = 0; i < npoints; i++) {
        int index = findNearestPoint(nodes + i * nfeatures, nfeatures,
                                     clusters, nclusters);
        if (membership[i] != index)
            delta += 1;
        membership[i] = index;
        new_centers_len[index] += 1;
        for (int j = 0; j < nfeatures; j++)
            new_centers[index * nfeatures + j] += nodes[i * nfeatures + j];
    }
    return delta;
}

double check(void) {
    int* membership = (int*)kargs[2];
    double* new_centers = (double*)kargs[3];
    int* new_centers_len = (int*)kargs[4];
    int npoints = (int)kargs[5];
    int nclusters = (int)kargs[6];
    int nfeatures = (int)kargs[7];
    double sum = 0.0;
    for (int i = 0; i < npoints; i++)
        sum += membership[i] * (i % 7 + 1);
    for (int c = 0; c < nclusters * nfeatures; c++)
        sum += new_centers[c];
    for (int c = 0; c < nclusters; c++)
        sum += new_centers_len[c];
    return sum;
}

/* Binds kernel arguments for whole-module pointer analysis (never run). */
void driver(void) {
    setup(8, 2, 4);
    kernel((double*)kargs[0], (double*)kargs[1], (int*)kargs[2],
           (double*)kargs[3], (int*)kargs[4],
           (int)kargs[5], (int)kargs[6], (int)kargs[7]);
}
"""
)

def workload(seed: int) -> list[int]:
    """Seeded clustering shapes: point count, cluster count and feature
    dimensionality (the parallel stage's distance loop scales with
    ``nclusters * nfeatures``)."""
    rng = workload_rng(seed)
    return [rng.randrange(32, 161), rng.randrange(2, 9),
            rng.randrange(4, 13)]


KMEANS = KernelSpec(
    name="K-means",
    domain="Machine Learning",
    description=(
        "finding the nearest cluster for each node and updating its position"
    ),
    source=SOURCE,
    accel_function="kernel",
    measure_entry="kernel",
    setup_function="setup",
    setup_args=[96, 5, 8],
    n_kernel_args=8,
    check_function="check",
    expected_p1="P-S",
    expected_p2=None,  # Table 2: replicated data-level parallelism N/A
    paper=PaperNumbers(
        speedup_legup=1.6,
        speedup_cgpa=5.0,
        legup_aluts=1696,
        cgpa_aluts=7197,
        legup_power_mw=46,
        cgpa_power_mw=162,
        legup_energy_uj=22.1,
        cgpa_energy_uj=22.9,
    ),
    workload_generator=workload,
)
