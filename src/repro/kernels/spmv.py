"""spmv: sparse matrix-vector product over a CSR matrix (scientific).

Second-wave irregular kernel (ROADMAP item 4).  The outer loop walks the
rows of a CSR matrix; the inner loop's trip count is *data-dependent*
(``rowptr[i] .. rowptr[i+1]``) and its loads are *indirect*
(``x[colidx[j]]``) — the two access patterns classic HLS pipelines
cannot schedule statically and CGPA absorbs with FIFO decoupling.  The
per-row dot product is side-effect-free, so the partitioner makes it the
parallel stage; the ``y[i]`` store and the running norm form the
sequential reduction behind it.  Pipeline shape: P-S (the row induction
is lightweight and replicates into the workers under P1; P2 pulls the
store-free reduction in too, collapsing to a single parallel stage).
"""

from __future__ import annotations

from .base import RNG_SOURCE, KernelSpec, workload_rng

SOURCE = (
    RNG_SOURCE
    + """
void* malloc(int n);

unsigned kargs[8];

void setup(int seed, int nrows, int ncols, int row_nnz) {
    rng_state = seed * 2654435761 + 12345;
    int* rowptr = (int*)malloc((nrows + 1) * sizeof(int));
    int nnz = 0;
    rowptr[0] = 0;
    for (int i = 0; i < nrows; i++) {
        int count = 1 + rnd() % (2 * row_nnz - 1);
        nnz = nnz + count;
        rowptr[i + 1] = nnz;
    }
    int* colidx = (int*)malloc(nnz * sizeof(int));
    double* vals = (double*)malloc(nnz * sizeof(double));
    for (int k = 0; k < nnz; k++) {
        colidx[k] = rnd() % ncols;
        vals[k] = 0.001 * (rnd() % 2000) - 1.0;
    }
    double* x = (double*)malloc(ncols * sizeof(double));
    for (int c = 0; c < ncols; c++)
        x[c] = 0.01 * (rnd() % 200) - 1.0;
    double* y = (double*)malloc(nrows * sizeof(double));
    for (int r = 0; r < nrows; r++)
        y[r] = 0.0;
    kargs[0] = (unsigned)rowptr;
    kargs[1] = (unsigned)colidx;
    kargs[2] = (unsigned)vals;
    kargs[3] = (unsigned)x;
    kargs[4] = (unsigned)y;
    kargs[5] = (unsigned)nrows;
}

double kernel(int* rowptr, int* colidx, double* vals, double* x, double* y,
              int nrows) {
    double norm = 0.0;
    for (int i = 0; i < nrows; i++) {
        /* parallel section: data-dependent dot product with indirect
           gathers from x. */
        double acc = 0.0;
        int end = rowptr[i + 1];
        for (int j = rowptr[i]; j < end; j++)
            acc += vals[j] * x[colidx[j]];
        /* sequential section: result store + running norm. */
        y[i] = acc;
        norm += acc;
    }
    return norm;
}

double check(void) {
    double* y = (double*)kargs[4];
    int nrows = (int)kargs[5];
    double sum = 0.0;
    for (int i = 0; i < nrows; i++)
        sum += y[i] * (1.0 + 0.001 * i);
    return sum;
}

/* Binds kernel arguments for whole-module pointer analysis (never run). */
void driver(void) {
    setup(1, 6, 8, 3);
    kernel((int*)kargs[0], (int*)kargs[1], (double*)kargs[2],
           (double*)kargs[3], (double*)kargs[4], (int)kargs[5]);
}
"""
)


def workload(seed: int) -> list[int]:
    """Seeded CSR shapes: rows/columns/density vary per seed.

    Ranges straddle the default footprint so fault and DSE sweeps see
    short-fat, tall-thin and denser matrices — meaningfully different
    FIFO traffic and cache behaviour, still small enough to co-simulate.
    """
    rng = workload_rng(seed)
    nrows = rng.randrange(16, 97)
    ncols = rng.randrange(8, 65)
    row_nnz = rng.randrange(2, 7)
    return [seed & 0x7FFFFFFF, nrows, ncols, row_nnz]


SPMV = KernelSpec(
    name="spmv",
    domain="Scientific",
    description=(
        "CSR sparse matrix-vector product with data-dependent row lengths"
        " and indirect x[colidx[j]] gathers"
    ),
    source=SOURCE,
    accel_function="kernel",
    measure_entry="kernel",
    setup_function="setup",
    setup_args=[1, 48, 32, 3],
    n_kernel_args=6,
    check_function="check",
    expected_p1="P-S",
    expected_p2="P",
    workload_generator=workload,
)
