"""Kernel specifications: the benchmark contract used by the harness.

Each of the paper's five kernels (Table 2) is described by a
:class:`KernelSpec`: its C source (setup + kernel + checksum), which
function CGPA accelerates, which function the harness times, the region
shape facts its workload guarantees, and the stage shapes Table 2 reports.

Kernel arguments cross from the setup phase to the timed phase through the
``kargs`` global array (setup stores them; the harness reads them out of
the memory image) so every backend — MIPS model, LegUp-style single FSM,
CGPA pipeline — is invoked with bit-identical inputs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable

from ..analysis.shapes import RegionShapes, Shape

#: Name of the global C array kernels use to publish their arguments.
KARGS_GLOBAL = "kargs"


def workload_rng(seed: int):
    """Deterministic RNG for Python-side workload generators.

    ``random.Random`` (Mersenne Twister) is specified to produce the same
    sequence for the same seed on every platform, Python version and
    process — the property the fleet/DSE byte-identity guarantees lean
    on.  The seed is pre-mixed so small consecutive seeds land in
    well-separated generator states.
    """
    import random

    return random.Random((seed * 0x9E3779B1 + 0x6D2B79F5) & 0xFFFFFFFF)

#: Deterministic LCG shared by all kernel setup codes (compiled C).
RNG_SOURCE = """
int rng_state = 12345;
int rnd(void) {
    rng_state = rng_state * 1103515245 + 12345;
    return (rng_state >> 16) & 0x7fff;
}
"""


@dataclass
class PaperNumbers:
    """What the paper reports for this kernel (Fig. 4 and Table 3)."""

    speedup_legup: float  # over the MIPS core (read off Fig. 4)
    speedup_cgpa: float  # over the MIPS core
    legup_aluts: int
    cgpa_aluts: int
    legup_power_mw: float
    cgpa_power_mw: float
    legup_energy_uj: float
    cgpa_energy_uj: float
    cgpa_p2_aluts: int | None = None
    cgpa_p2_energy_uj: float | None = None


@dataclass
class KernelSpec:
    """Everything the harness needs to compile, run and score one kernel."""

    name: str
    domain: str
    description: str
    source: str
    accel_function: str
    measure_entry: str
    setup_function: str
    setup_args: list[int]
    n_kernel_args: int
    check_function: str
    expected_p1: str  # Table 2 stage shape under P1
    expected_p2: str | None  # Table 2 P2 column (None = "not applicable")
    #: Sites (by index among the module's malloc sites) with list shape;
    #: "all" declares every site an acyclic list (workloads guarantee it).
    list_shape_sites: str | list[int] = "all"
    paper: PaperNumbers | None = None
    #: Seeded synthetic workload generator: ``seed -> setup_args``.  Every
    #: kernel ships one so DSE sweeps, fault campaigns and the conformance
    #: suite can draw *meaningfully different* input footprints (graph /
    #: table / matrix shapes) that are still deterministic per seed —
    #: ``workload_generator(s)`` must return the same list on every call,
    #: in every process (guarded by the determinism tests).
    workload_generator: Callable[[int], list[int]] | None = None

    @property
    def supports_p2(self) -> bool:
        return self.expected_p2 is not None

    def workload_args(self, seed: int) -> list[int]:
        """Setup arguments for the seeded synthetic workload ``seed``.

        Falls back to the fixed paper-scale :attr:`setup_args` when the
        kernel declares no generator (seed 0 is pinned to the defaults
        for every kernel, so ``workload_args(0)`` is always the shipped
        baseline footprint).
        """
        if self.workload_generator is None or seed == 0:
            return list(self.setup_args)
        return list(self.workload_generator(seed))

    def with_workload(self, seed: int) -> "KernelSpec":
        """A derived spec whose ``setup_args`` are the seeded workload.

        The derived spec flows through every backend unchanged — the
        harness, DSE evaluator, fault sweeps and co-simulation all read
        ``setup_args``, so one ``spec.with_workload(seed)`` call retargets
        the whole verification matrix at a different input footprint.
        """
        return dataclasses.replace(self, setup_args=self.workload_args(seed))

    def shapes_for(self, module) -> RegionShapes:
        """Region shape declarations for this kernel's workload.

        Stands in for the Ghiya–Hendren shape analysis the paper cites:
        the setup code builds only acyclic structures, and this is where
        that guarantee is handed to the dependence analysis.
        """
        from ..interp import malloc_site_table

        shapes = RegionShapes()
        sites = malloc_site_table(module)
        if self.list_shape_sites == "all":
            chosen = list(sites)
        else:
            chosen = [s for s in self.list_shape_sites if s in sites]
        for site in chosen:
            shapes.declare(site, Shape.LIST)
        return shapes
