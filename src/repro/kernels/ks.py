"""ks: Kernighan-Schweikert style graph-partition gain search.

Table 2: "traversing doubly-nested linked-lists to find a max grain of
swapping".  The outer loop walks the A-partition vertex list (heavyweight
replicable traversal -> sequential stage 1); for each A vertex an inner
loop walks the entire B-partition list computing the swap gain against
the edge-weight matrix (the *parallel* section); the running maximum is a
sequential reduction (stage 3).  Pipeline shape: S-P-S.
"""

from __future__ import annotations

from .base import RNG_SOURCE, KernelSpec, PaperNumbers, workload_rng

SOURCE = (
    RNG_SOURCE
    + """
typedef struct vert {
    double d;       /* external - internal cost of this vertex */
    int id;
    struct vert* next;
} vert_t;

void* malloc(int n);

unsigned kargs[8];

vert_t* build_list(int n, int base_id) {
    vert_t* head = 0;
    for (int i = 0; i < n; i++) {
        vert_t* v = (vert_t*)malloc(sizeof(vert_t));
        v->d = 0.01 * (rnd() % 500) - 2.5;
        v->id = base_id + i;
        v->next = head;
        head = v;
    }
    return head;
}

void setup(int na, int nb) {
    vert_t* alist = build_list(na, 0);
    vert_t* blist = build_list(nb, 0);
    double* w = (double*)malloc(na * nb * sizeof(double));
    for (int i = 0; i < na * nb; i++)
        w[i] = 0.001 * (rnd() % 1000);
    kargs[0] = (unsigned)alist;
    kargs[1] = (unsigned)blist;
    kargs[2] = (unsigned)w;
    kargs[3] = (unsigned)nb;
}

double kernel(vert_t* alist, vert_t* blist, double* w, int nb) {
    double best = -1.0e30;
    for (vert_t* a = alist; a; a = a->next) {
        double bestb = -1.0e30;
        for (vert_t* b = blist; b; b = b->next) {
            double gain = a->d + b->d - 2.0 * w[a->id * nb + b->id];
            if (gain > bestb)
                bestb = gain;
        }
        if (bestb > best)
            best = bestb;
    }
    return best;
}

double check(void) {
    /* Independent recomputation of the best gain (no call to kernel,
       which the CGPA backend rewrites into a hardware invocation). */
    vert_t* alist = (vert_t*)kargs[0];
    vert_t* blist = (vert_t*)kargs[1];
    double* w = (double*)kargs[2];
    int nb = (int)kargs[3];
    double best = -1.0e30;
    for (vert_t* a = alist; a; a = a->next) {
        for (vert_t* b = blist; b; b = b->next) {
            double gain = a->d + b->d - 2.0 * w[a->id * nb + b->id];
            if (gain > best)
                best = gain;
        }
    }
    return best;
}

/* Binds kernel arguments for whole-module pointer analysis (never run). */
void driver(void) {
    setup(4, 4);
    kernel((vert_t*)kargs[0], (vert_t*)kargs[1], (double*)kargs[2], (int)kargs[3]);
}
"""
)

def workload(seed: int) -> list[int]:
    """Seeded partition sizes: asymmetric A/B lists stress the pipeline's
    load balance (the inner loop's trip count is ``nb``)."""
    rng = workload_rng(seed)
    return [rng.randrange(12, 65), rng.randrange(12, 65)]


KS = KernelSpec(
    name="ks",
    domain="Graph Partition",
    description=(
        "traversing doubly-nested linked-lists to find a max grain of swapping"
    ),
    source=SOURCE,
    accel_function="kernel",
    measure_entry="kernel",
    setup_function="setup",
    setup_args=[40, 40],
    n_kernel_args=4,
    check_function="check",
    expected_p1="S-P-S",
    expected_p2=None,
    paper=PaperNumbers(
        speedup_legup=2.0,
        speedup_cgpa=6.5,
        legup_aluts=1371,
        cgpa_aluts=5741,
        legup_power_mw=60,
        cgpa_power_mw=233,
        legup_energy_uj=104.5,
        cgpa_energy_uj=131.7,
    ),
    workload_generator=workload,
)
