"""Hash-indexing: build a hash index over a stream of records (database).

Modelled on the index-walker workload the paper cites (Kocberber et al.,
"Meet the Walkers", MICRO 2013): for every record in the input linked
list, compute a hash key (a multi-round integer mixer — the *parallel*
section) and insert the record at the head of its bucket chain (the
*sequential* section, a data-dependent read-modify-write of the bucket
table).  The input-list traversal is the heavyweight replicable section.
Pipeline shape: S-P-S (Table 2).
"""

from __future__ import annotations

from .base import RNG_SOURCE, KernelSpec, PaperNumbers, workload_rng

SOURCE = (
    RNG_SOURCE
    + """
typedef struct item {
    int key;
    int hash;
    struct item* next;
    struct item* hnext;
} item_t;

void* malloc(int n);

unsigned kargs[4];

void setup(int nitems, int nbuckets) {
    item_t* head = 0;
    for (int i = 0; i < nitems; i++) {
        item_t* it = (item_t*)malloc(sizeof(item_t));
        it->key = rnd() * 7919 + i;
        it->hash = 0;
        it->next = head;
        it->hnext = 0;
        head = it;
    }
    item_t** buckets = (item_t**)malloc(nbuckets * sizeof(item_t*));
    for (int b = 0; b < nbuckets; b++)
        buckets[b] = 0;
    kargs[0] = (unsigned)head;
    kargs[1] = (unsigned)buckets;
    kargs[2] = (unsigned)nbuckets;
}

void kernel(item_t* items, item_t** buckets, int nbuckets) {
    for ( ; items; items = items->next) {
        /* parallel section: a few rounds of integer mixing */
        int h = items->key;
        h = h ^ (h >> 16);
        h = h * 0x045d9f3b;
        h = h ^ (h >> 13);
        h = h * 0x045d9f3b;
        h = h ^ (h >> 16);
        h = h * 0x2545f491;
        h = h ^ (h >> 11);
        if (h < 0)
            h = -h;
        h = h % nbuckets;
        items->hash = h;
        /* sequential section: insert at the head of the bucket chain */
        item_t* head = buckets[h];
        items->hnext = head;
        buckets[h] = items;
    }
}

double check(void) {
    item_t** buckets = (item_t**)kargs[1];
    int nbuckets = (int)kargs[2];
    double sum = 0.0;
    for (int b = 0; b < nbuckets; b++) {
        int depth = 0;
        for (item_t* it = buckets[b]; it; it = it->hnext) {
            depth++;
            sum += (double)(it->key % 1009) + 0.25 * depth + b;
        }
    }
    return sum;
}

/* Binds kernel arguments for whole-module pointer analysis (never run). */
void driver(void) {
    setup(8, 4);
    kernel((item_t*)kargs[0], (item_t**)kargs[1], (int)kargs[2]);
}
"""
)

def workload(seed: int) -> list[int]:
    """Seeded index shapes: record count and bucket-table size (chain
    depth, and so the sequential stage's read-modify-write cost, follows
    the ``nitems``:``nbuckets`` ratio)."""
    rng = workload_rng(seed)
    return [rng.randrange(128, 641), rng.choice([16, 32, 64, 128])]


HASH_INDEXING = KernelSpec(
    name="Hash-indexing",
    domain="Database",
    description=(
        "computing hash key for each node and indexing it in a linked-list"
    ),
    source=SOURCE,
    accel_function="kernel",
    measure_entry="kernel",
    setup_function="setup",
    setup_args=[512, 64],
    n_kernel_args=3,
    check_function="check",
    expected_p1="S-P-S",
    expected_p2=None,
    paper=PaperNumbers(
        speedup_legup=1.9,
        speedup_cgpa=6.2,
        legup_aluts=421,
        cgpa_aluts=2052,
        legup_power_mw=47,
        cgpa_power_mw=150,
        legup_energy_uj=12.1,
        cgpa_energy_uj=14.6,
    ),
    workload_generator=workload,
)
