"""SIFT 1D row Gaussian blur (image processing).

Appendix A.2's case study.  The accelerated loop is the inner
moving-window loop after scalar replacement / pipeline vectorization: a
5-tap weighted sum over shift registers.  CGPA identifies the induction
variable (R1, lightweight -> replicated everywhere), the shift-register
swaps (R2, lightweight -> replicated in the workers), and the new-pixel
load (R3, heavyweight -> sequential stage that *broadcasts* the pixel to
all four shift-register chains).  Pipeline shape: S-P; P2 instead
replicates R3, making every worker fetch redundantly (shape P).

The row loop stays in software structure (``kernel`` calls ``blur_row``
once per row), so the accelerator is re-invoked per row exactly as a
LegUp-embedded co-processor would be.
"""

from __future__ import annotations

from .base import RNG_SOURCE, KernelSpec, PaperNumbers, workload_rng

SOURCE = (
    RNG_SOURCE
    + """
void* malloc(int n);

unsigned kargs[4];

double coef[5];

void setup(int height, int width) {
    /* Rows are padded by 8 doubles so img[j+5] never leaves the row. */
    double* img = (double*)malloc(height * (width + 8) * sizeof(double));
    double* inter = (double*)malloc(height * (width + 8) * sizeof(double));
    for (int i = 0; i < height * (width + 8); i++) {
        img[i] = 0.001 * (rnd() % 1000);
        inter[i] = 0.0;
    }
    coef[0] = 0.0625; coef[1] = 0.25; coef[2] = 0.375;
    coef[3] = 0.25;   coef[4] = 0.0625;
    kargs[0] = (unsigned)img;
    kargs[1] = (unsigned)inter;
    kargs[2] = (unsigned)height;
    kargs[3] = (unsigned)width;
}

void blur_row(double* img_row, double* out_row, int width) {
    double img0 = img_row[0];
    double img1 = img_row[1];
    double img2 = img_row[2];
    double img3 = img_row[3];
    double img4 = img_row[4];
    double c0 = coef[0];
    double c1 = coef[1];
    double c2 = coef[2];
    double c3 = coef[3];
    double c4 = coef[4];
    for (int j = 0; j < width - 4; j++) {
        out_row[j] = c0 * img0 + c1 * img1 + c2 * img2
                   + c3 * img3 + c4 * img4;
        img0 = img1;
        img1 = img2;
        img2 = img3;
        img3 = img4;
        img4 = img_row[j + 5];
    }
}

void kernel(double* img, double* inter, int height, int width) {
    for (int i = 0; i < height; i++) {
        blur_row(img + i * (width + 8), inter + i * (width + 8), width);
    }
}

double check(void) {
    double* inter = (double*)kargs[1];
    int height = (int)kargs[2];
    int width = (int)kargs[3];
    double sum = 0.0;
    for (int i = 0; i < height; i++)
        for (int j = 0; j < width - 4; j++)
            sum += inter[i * (width + 8) + j] * ((i + j) % 5 + 1);
    return sum;
}

/* Binds kernel arguments for whole-module pointer analysis (never run). */
void driver(void) {
    setup(2, 16);
    kernel((double*)kargs[0], (double*)kargs[1], (int)kargs[2], (int)kargs[3]);
}
"""
)

def workload(seed: int) -> list[int]:
    """Seeded image shapes: row count and row width (width >= 8 keeps the
    5-tap window and the padded row layout valid)."""
    rng = workload_rng(seed)
    return [rng.randrange(4, 17), rng.randrange(8, 129)]


GAUSSBLUR = KernelSpec(
    name="1D-Gaussblur",
    domain="Image Processing",
    description=(
        "1D row Gaussian blurring; pipeline vectorization has been applied "
        "to reduce memory access"
    ),
    source=SOURCE,
    accel_function="blur_row",
    measure_entry="kernel",
    setup_function="setup",
    setup_args=[10, 96],
    n_kernel_args=4,
    check_function="check",
    expected_p1="S-P",
    expected_p2="P",
    paper=PaperNumbers(
        speedup_legup=2.1,
        speedup_cgpa=7.3,
        legup_aluts=1319,
        cgpa_aluts=3806,
        legup_power_mw=53,
        cgpa_power_mw=183,
        legup_energy_uj=1.27,
        cgpa_energy_uj=1.35,
        cgpa_p2_aluts=4168,
        cgpa_p2_energy_uj=1.55,
    ),
    workload_generator=workload,
)
