"""top-k: streaming top-k selection with a bounded min-heap (analytics).

Second-wave irregular kernel (ROADMAP item 4).  The loop streams a
linked list of records; each record gets a multi-round integer score
(side-effect-free — the parallel stage) and the k best scores are kept
in a min-heap whose root is the current admission threshold.  The heap
update is the interesting sequential section: it runs *conditionally*
(only scores beating the root), its sift-down loop has a data-dependent,
``break``-terminated trip count, and every iteration's memory addresses
depend on the comparisons before them — an early-exit idiom the fuzzers
now generate too.  Pipeline shape: S-P-S.
"""

from __future__ import annotations

from .base import RNG_SOURCE, KernelSpec, workload_rng

SOURCE = (
    RNG_SOURCE
    + """
typedef struct rec {
    int a;
    int b;
    struct rec* next;
} rec_t;

void* malloc(int n);

unsigned kargs[8];

void setup(int seed, int nrecs, int k) {
    rng_state = seed * 2654435761 + 12345;
    rec_t* head = 0;
    for (int i = 0; i < nrecs; i++) {
        rec_t* r = (rec_t*)malloc(sizeof(rec_t));
        r->a = rnd();
        r->b = rnd() % 4096;
        r->next = head;
        head = r;
    }
    int* heap = (int*)malloc(k * sizeof(int));
    for (int i = 0; i < k; i++)
        heap[i] = -2147483647;
    kargs[0] = (unsigned)head;
    kargs[1] = (unsigned)heap;
    kargs[2] = (unsigned)k;
}

int kernel(rec_t* recs, int* heap, int k) {
    int replaced = 0;
    for ( ; recs; recs = recs->next) {
        /* parallel section: multi-round integer score. */
        int s = recs->a;
        s = s ^ (s >> 16);
        s = s * 0x45d9f3b;
        s = s ^ (s >> 13);
        s = s + recs->b * 131;
        s = s ^ (s >> 11);
        s = s & 0x3fffffff;
        /* sequential section: admission test + replace-root sift-down
           with a data-dependent, break-terminated trip count. */
        if (s > heap[0]) {
            replaced++;
            heap[0] = s;
            int i = 0;
            while (1) {
                int m = i;
                int l = 2 * i + 1;
                int r = 2 * i + 2;
                if (l < k && heap[l] < heap[m]) m = l;
                if (r < k && heap[r] < heap[m]) m = r;
                if (m == i) break;
                int t = heap[i];
                heap[i] = heap[m];
                heap[m] = t;
                i = m;
            }
        }
    }
    return replaced;
}

double check(void) {
    int* heap = (int*)kargs[1];
    int k = (int)kargs[2];
    double sum = 0.0;
    for (int i = 0; i < k; i++)
        sum += (double)(heap[i] % 100003) + 0.125 * i;
    return sum;
}

/* Binds kernel arguments for whole-module pointer analysis (never run). */
void driver(void) {
    setup(1, 10, 4);
    kernel((rec_t*)kargs[0], (int*)kargs[1], (int)kargs[2]);
}
"""
)


def workload(seed: int) -> list[int]:
    """Seeded stream shapes: record count and heap size vary per seed.

    Small heaps make admissions rare (the sequential stage mostly idles);
    large heaps admit often and sift deeper — opposite ends of the
    pipeline's load balance.
    """
    rng = workload_rng(seed)
    nrecs = rng.randrange(64, 321)
    k = rng.choice([4, 8, 16, 32])
    return [seed & 0x7FFFFFFF, nrecs, k]


TOPK = KernelSpec(
    name="top-k",
    domain="Analytics",
    description=(
        "streaming top-k selection: scored records filtered through a"
        " bounded min-heap with break-terminated sift-down"
    ),
    source=SOURCE,
    accel_function="kernel",
    measure_entry="kernel",
    setup_function="setup",
    setup_args=[1, 128, 8],
    n_kernel_args=3,
    check_function="check",
    expected_p1="S-P-S",
    expected_p2="P-S",
    workload_generator=workload,
)
