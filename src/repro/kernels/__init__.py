"""The benchmark kernels: the paper's Table 2 plus the second wave.

Two tiers, one contract:

* :data:`PAPER_KERNELS` — the five kernels of the paper's Table 2, with
  the published speedup/area/energy numbers attached.  The experiment
  drivers that regenerate the paper's tables and figures iterate these.
* :data:`SECOND_WAVE` — four additional irregular workloads (ROADMAP
  item 4): BFS over CSR graphs, hash-join probe, CSR sparse matvec and
  streaming top-k selection.  No paper numbers — they exist to stress
  data-dependent control and memory patterns beyond the reproduction.

:data:`ALL_KERNELS` is the union, and it is the *only* registry the
generic machinery reads: every kernel listed here flows unchanged
through the interpreter oracle, all three simulation engines, RTL
emission and co-simulation, DSE, fault sweeps, the service contracts and
the run-record spine — enforced by ``tests/test_kernel_conformance.py``,
so adding kernel #10 is a one-file change that inherits the whole
verification matrix.
"""

from .base import (
    KARGS_GLOBAL,
    KernelSpec,
    PaperNumbers,
    workload_rng,
)
from .bfs import BFS
from .em3d import EM3D
from .gaussblur import GAUSSBLUR
from .hash_indexing import HASH_INDEXING
from .hash_join import HASH_JOIN
from .kmeans import KMEANS
from .ks import KS
from .spmv import SPMV
from .topk import TOPK

#: The paper's five kernels, in Table 2 order.
PAPER_KERNELS: list[KernelSpec] = [KMEANS, HASH_INDEXING, KS, EM3D, GAUSSBLUR]

#: Second-wave irregular kernels (no paper numbers).
SECOND_WAVE: list[KernelSpec] = [BFS, HASH_JOIN, SPMV, TOPK]

#: Every kernel the harness knows; the conformance suite runs over this.
ALL_KERNELS: list[KernelSpec] = PAPER_KERNELS + SECOND_WAVE

KERNELS_BY_NAME: dict[str, KernelSpec] = {k.name: k for k in ALL_KERNELS}

__all__ = [
    "KernelSpec", "PaperNumbers", "KARGS_GLOBAL", "workload_rng",
    "ALL_KERNELS", "PAPER_KERNELS", "SECOND_WAVE", "KERNELS_BY_NAME",
    "EM3D", "KMEANS", "HASH_INDEXING", "KS", "GAUSSBLUR",
    "BFS", "HASH_JOIN", "SPMV", "TOPK",
]
