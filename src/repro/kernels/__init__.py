"""The five benchmark kernels of the paper's Table 2."""

from .base import KARGS_GLOBAL, KernelSpec, PaperNumbers
from .em3d import EM3D
from .gaussblur import GAUSSBLUR
from .hash_indexing import HASH_INDEXING
from .kmeans import KMEANS
from .ks import KS

#: Table 2 order.
ALL_KERNELS: list[KernelSpec] = [KMEANS, HASH_INDEXING, KS, EM3D, GAUSSBLUR]

KERNELS_BY_NAME: dict[str, KernelSpec] = {k.name: k for k in ALL_KERNELS}

__all__ = [
    "KernelSpec", "PaperNumbers", "KARGS_GLOBAL",
    "ALL_KERNELS", "KERNELS_BY_NAME",
    "EM3D", "KMEANS", "HASH_INDEXING", "KS", "GAUSSBLUR",
]
