"""Value Change Dump (IEEE 1364) waveform exporter.

Renders a recorded :class:`~repro.telemetry.events.MemoryTraceSink` as a
VCD file loadable in GTKWave & friends.  One timestep is one cycle.  Per
worker it dumps two signals — the cycle category (``*_cat``, encoded per
:data:`~repro.telemetry.events.CATEGORY_CODES`) and the FSM position
(``*_fsm``, a dense encoding of (block, state) pairs; the legend is
written into a ``$comment`` block in the header).  Each FIFO queue dumps
its occupancy.
"""

from __future__ import annotations

from typing import IO

from .events import ALL_CATEGORIES, CATEGORY_CODES, MemoryTraceSink

_ID_ALPHABET = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Compact printable VCD identifier for signal number ``index``."""
    chars = []
    index += 1
    while index:
        index, digit = divmod(index - 1, len(_ID_ALPHABET))
        chars.append(_ID_ALPHABET[digit])
    return "".join(reversed(chars))


def _sanitize(name: str) -> str:
    """VCD reference names cannot contain whitespace or VCD specials."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch in "_.:" else "_")
    return "".join(out)


def _bits(value: int, width: int) -> str:
    return format(value, "b").zfill(width)


class _Signal:
    __slots__ = ("ident", "name", "width", "changes")

    def __init__(self, ident: str, name: str, width: int) -> None:
        self.ident = ident
        self.name = name
        self.width = width
        self.changes: list[tuple[int, int]] = []


def write_vcd(trace: MemoryTraceSink, fp: IO[str]) -> None:
    """Serialise ``trace`` as a VCD waveform onto ``fp``."""
    trace.flush()
    signals: list[_Signal] = []

    def new_signal(name: str, width: int) -> _Signal:
        signal = _Signal(_identifier(len(signals)), _sanitize(name), width)
        signals.append(signal)
        return signal

    # Worker category signals, driven by the span cover.
    for worker in trace.worker_names:
        signal = new_signal(f"{worker}_cat", 3)
        for span in trace.spans_for(worker):
            signal.changes.append((span.start, CATEGORY_CODES[span.category]))

    # FSM position signals: dense (block, state) -> code encoding.
    fsm_legend: dict[str, dict[tuple[str, int], int]] = {}
    fsm_signals: dict[str, _Signal] = {}
    for change in trace.state_changes:
        if change.worker not in fsm_signals:
            fsm_signals[change.worker] = new_signal(f"{change.worker}_fsm", 16)
            fsm_legend[change.worker] = {}
        legend = fsm_legend[change.worker]
        key = (change.block, change.state)
        code = legend.setdefault(key, len(legend))
        fsm_signals[change.worker].changes.append((change.cycle, code))

    # FIFO occupancy signals (one per queue).
    fifo_signals: dict[tuple[str, int], _Signal] = {}
    for sample in trace.occupancy:
        key = (sample.fifo, sample.queue)
        if key not in fifo_signals:
            fifo_signals[key] = new_signal(
                f"{sample.fifo}_q{sample.queue}_occ", 16
            )
        fifo_signals[key].changes.append((sample.cycle, sample.occupancy))

    # -- header ------------------------------------------------------------------
    fp.write("$date\n    (simulated)\n$end\n")
    fp.write("$version\n    repro.telemetry VCD exporter\n$end\n")
    fp.write("$comment\n    category encoding: ")
    fp.write(
        ", ".join(f"{CATEGORY_CODES[c]}={c.value}" for c in ALL_CATEGORIES)
    )
    fp.write("\n")
    for worker, legend in fsm_legend.items():
        pairs = ", ".join(
            f"{code}={block}/s{state}"
            for (block, state), code in sorted(legend.items(), key=lambda kv: kv[1])
        )
        fp.write(f"    {_sanitize(worker)}_fsm encoding: {pairs}\n")
    fp.write("$end\n")
    fp.write("$timescale 1ns $end\n")
    fp.write("$scope module repro $end\n")
    for signal in signals:
        fp.write(f"$var reg {signal.width} {signal.ident} {signal.name} $end\n")
    fp.write("$upscope $end\n")
    fp.write("$enddefinitions $end\n")

    # -- value changes ------------------------------------------------------------
    # Merge per-signal change lists into one time-ordered dump.  Last
    # change at a given time wins (occupancy samples within one cycle).
    merged: dict[int, dict[str, tuple[int, int]]] = {}
    for signal in signals:
        for order, (cycle, value) in enumerate(signal.changes):
            merged.setdefault(cycle, {})[signal.ident] = (value, signal.width)

    fp.write("$dumpvars\n")
    for signal in signals:
        fp.write(f"bx {signal.ident}\n")
    fp.write("$end\n")

    last_value: dict[str, int] = {}
    for cycle in sorted(merged):
        lines = []
        for ident, (value, width) in merged[cycle].items():
            if last_value.get(ident) == value:
                continue
            last_value[ident] = value
            lines.append(f"b{_bits(value, width)} {ident}\n")
        if not lines:
            continue
        fp.write(f"#{cycle}\n")
        fp.writelines(lines)
    if trace.total_cycles is not None:
        fp.write(f"#{trace.total_cycles}\n")


def dump_vcd(trace: MemoryTraceSink, path: str) -> None:
    """Write the VCD waveform for ``trace`` to ``path``."""
    with open(path, "w") as fp:
        write_vcd(trace, fp)
