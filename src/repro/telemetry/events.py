"""Event/span core of the telemetry subsystem.

The hardware simulator attributes **every worker cycle to exactly one
category** (the invariant the cycle-conservation tests pin down):

* ``COMPUTE``    — the FSM advanced a state or retired operations;
* ``CACHE``      — stalled waiting for the cache/memory port (the paper's
  variable-latency memory accesses, Section 2.2);
* ``FIFO_FULL``  — a ``produce`` blocked on a full downstream queue;
* ``FIFO_EMPTY`` — a ``consume`` blocked on an empty upstream queue;
* ``JOIN``       — the parent FSM waiting in ``parallel_join`` for worker
  finish signals;
* ``IDLE``       — held in reset (before ``parallel_fork``) or finished.

Sinks receive these attributions plus FSM-state changes, FIFO occupancy
samples and cache transactions.  Attributions arrive through two
equivalent channels that sinks must treat interchangeably: per-cycle
``worker_cycle`` calls (ticked cycles) and batched ``worker_span`` calls
(the event-driven engine's skip-ahead stall spans and pre-start reset
holds).  Both cover every cycle exactly once.  The default :data:`NULL_SINK` is a
do-nothing singleton; instrumented code guards every emission with the
sink's ``enabled`` flag (a plain attribute read), so an untraced
simulation pays one boolean check per event site and nothing else.

:class:`MemoryTraceSink` is the standard recording sink: it coalesces
per-cycle attributions into :class:`Span` runs and keeps everything the
exporters (:mod:`repro.telemetry.chrome_trace`,
:mod:`repro.telemetry.vcd`) and the analyzer
(:mod:`repro.telemetry.bottleneck`) need.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable


class CycleCategory(str, enum.Enum):
    """What one worker cycle was spent on (exactly one per cycle)."""

    COMPUTE = "compute"
    CACHE = "cache_stall"
    FIFO_FULL = "fifo_full_stall"
    FIFO_EMPTY = "fifo_empty_stall"
    JOIN = "join_stall"
    IDLE = "idle"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: All categories in display order (stall tables, VCD encodings).
ALL_CATEGORIES: tuple[CycleCategory, ...] = (
    CycleCategory.COMPUTE,
    CycleCategory.CACHE,
    CycleCategory.FIFO_FULL,
    CycleCategory.FIFO_EMPTY,
    CycleCategory.JOIN,
    CycleCategory.IDLE,
)

#: Stable small-integer code per category (VCD vectors, compact JSON).
CATEGORY_CODES: dict[CycleCategory, int] = {
    cat: i for i, cat in enumerate(ALL_CATEGORIES)
}


@runtime_checkable
class TraceSink(Protocol):
    """Receiver protocol for simulator telemetry.

    Implementations must expose ``enabled``; instrumented code skips the
    call entirely when it is false, so a sink can rely on being invoked
    only while enabled.
    """

    enabled: bool

    def begin_run(self, worker_names: list[str]) -> None:
        """A simulation is starting (workers may still be forked later)."""

    def worker_cycle(
        self, worker: str, cycle: int, category: CycleCategory
    ) -> None:
        """Attribute one cycle of ``worker`` to ``category``."""

    def worker_span(
        self, worker: str, category: CycleCategory, start: int, end: int
    ) -> None:
        """Attribute a half-open cycle range ``[start, end)`` at once."""

    def worker_state(
        self, worker: str, cycle: int, block: str, state: int
    ) -> None:
        """The worker's FSM sits in ``block``/``state`` this cycle."""

    def fifo_occupancy(
        self, fifo: str, queue: int, cycle: int, occupancy: int
    ) -> None:
        """Queue ``queue`` of buffer ``fifo`` holds ``occupancy`` values."""

    def cache_access(
        self,
        cycle: int,
        addr: int,
        is_write: bool,
        hit: bool,
        ready: int,
    ) -> None:
        """One cache transaction issued at ``cycle``, data ready at ``ready``."""

    def end_run(self, cycles: int) -> None:
        """Simulation finished after ``cycles`` total cycles."""


class NullSink:
    """Zero-overhead default sink: never enabled, every hook a no-op."""

    enabled = False

    def begin_run(self, worker_names: list[str]) -> None:
        pass

    def worker_cycle(self, worker, cycle, category) -> None:
        pass

    def worker_span(self, worker, category, start, end) -> None:
        pass

    def worker_state(self, worker, cycle, block, state) -> None:
        pass

    def fifo_occupancy(self, fifo, queue, cycle, occupancy) -> None:
        pass

    def cache_access(self, cycle, addr, is_write, hit, ready) -> None:
        pass

    def end_run(self, cycles: int) -> None:
        pass


#: Shared do-nothing sink; instrumented objects default to this.
NULL_SINK = NullSink()


@dataclass
class Span:
    """A run of consecutive cycles one worker spent in one category."""

    worker: str
    category: CycleCategory
    start: int
    end: int  # exclusive

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class StateChange:
    """FSM state transition sample (worker entered block/state at cycle)."""

    worker: str
    cycle: int
    block: str
    state: int


@dataclass
class OccupancySample:
    """FIFO queue occupancy right after a push/pop/reset."""

    fifo: str
    queue: int
    cycle: int
    occupancy: int


@dataclass
class CacheAccess:
    """One cache transaction (timing, not data)."""

    cycle: int
    addr: int
    is_write: bool
    hit: bool
    ready: int

    @property
    def latency(self) -> int:
        return self.ready - self.cycle


@dataclass
class _OpenSpan:
    """Mutable coalescing state for one worker's current category run."""

    category: CycleCategory
    start: int
    end: int


class MemoryTraceSink:
    """Recording sink: coalesces cycles into spans, keeps raw samples.

    The result of a traced run lives in four collections:

    * ``spans``          — per-worker category runs (cycle-exact cover);
    * ``state_changes``  — FSM (block, state) transitions;
    * ``occupancy``      — FIFO occupancy samples;
    * ``cache_accesses`` — cache transactions with latencies.
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.state_changes: list[StateChange] = []
        self.occupancy: list[OccupancySample] = []
        self.cache_accesses: list[CacheAccess] = []
        self.worker_names: list[str] = []
        self.total_cycles: int | None = None
        self._open: dict[str, _OpenSpan] = {}
        self._last_state: dict[str, tuple[str, int]] = {}

    # -- TraceSink hooks ---------------------------------------------------------

    def begin_run(self, worker_names: list[str]) -> None:
        for name in worker_names:
            if name not in self.worker_names:
                self.worker_names.append(name)

    def worker_cycle(
        self, worker: str, cycle: int, category: CycleCategory
    ) -> None:
        open_ = self._open.get(worker)
        if open_ is not None and open_.category is category and open_.end == cycle:
            open_.end = cycle + 1
            return
        if open_ is not None:
            self.spans.append(
                Span(worker, open_.category, open_.start, open_.end)
            )
        else:
            if worker not in self.worker_names:
                self.worker_names.append(worker)
        self._open[worker] = _OpenSpan(category, cycle, cycle + 1)

    def worker_span(
        self, worker: str, category: CycleCategory, start: int, end: int
    ) -> None:
        if end <= start:
            return
        if worker not in self.worker_names:
            self.worker_names.append(worker)
        open_ = self._open.get(worker)
        if open_ is not None and open_.category is category and open_.end == start:
            open_.end = end
            return
        if open_ is not None:
            self.spans.append(
                Span(worker, open_.category, open_.start, open_.end)
            )
        self._open[worker] = _OpenSpan(category, start, end)

    def worker_state(
        self, worker: str, cycle: int, block: str, state: int
    ) -> None:
        key = (block, state)
        if self._last_state.get(worker) == key:
            return
        self._last_state[worker] = key
        self.state_changes.append(StateChange(worker, cycle, block, state))

    def fifo_occupancy(
        self, fifo: str, queue: int, cycle: int, occupancy: int
    ) -> None:
        self.occupancy.append(OccupancySample(fifo, queue, cycle, occupancy))

    def cache_access(
        self, cycle: int, addr: int, is_write: bool, hit: bool, ready: int
    ) -> None:
        self.cache_accesses.append(
            CacheAccess(cycle, addr, is_write, hit, ready)
        )

    def end_run(self, cycles: int) -> None:
        self.total_cycles = cycles
        self.flush()

    # -- accessors --------------------------------------------------------------

    def flush(self) -> None:
        """Close all open spans and canonicalise their order.

        Idempotent; called by ``end_run``.  Spans are sorted by
        ``(start, worker)`` — per-worker spans are disjoint, so this is a
        total chronological order.  The lockstep engine closes spans in
        cycle order while the event engine closes a blocked worker's span
        only at its wake event, so without the sort the two engines would
        produce identically-shaped traces in different list orders; with
        it, exporter output is bit-identical across engines.
        """
        for worker, open_ in self._open.items():
            self.spans.append(Span(worker, open_.category, open_.start, open_.end))
        self._open.clear()
        self.spans.sort(key=lambda span: (span.start, span.worker))

    def spans_for(self, worker: str) -> list[Span]:
        return [s for s in self.spans if s.worker == worker]

    def breakdown(self) -> dict[str, dict[str, int]]:
        """Per-worker cycles by category name, rebuilt from the spans."""
        out: dict[str, dict[str, int]] = {}
        for span in self.spans:
            per = out.setdefault(span.worker, {c.value: 0 for c in ALL_CATEGORIES})
            per[span.category.value] += span.duration
        return out
