"""Pipeline bottleneck analysis over stall telemetry.

Post-processes a simulation (a :class:`~repro.hw.system.SimReport`, or a
recorded :class:`~repro.telemetry.events.MemoryTraceSink`) into a
per-stage stall breakdown, identifies the *critical* stage — the worker
losing the most cycles to genuine stalls (cache + FIFO; join/idle are
symptoms of someone else's slowness) — and derives concrete tuning
recommendations: deepen a saturating FIFO, replicate a compute-bound
stage, or attack memory latency, mirroring the stall-driven buffer
sizing methodology of the dataflow-HLS literature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .events import ALL_CATEGORIES, CycleCategory, MemoryTraceSink

if TYPE_CHECKING:  # pragma: no cover
    from ..hw.system import SimReport

#: A stall source must cost at least this fraction of total cycles to be
#: worth a recommendation (below it, the pipeline is considered balanced).
SIGNIFICANCE = 0.05


@dataclass
class WorkerBreakdown:
    """Where one worker's cycles went, by category."""

    worker: str
    cycles: dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.cycles.values())

    def get(self, category: CycleCategory) -> int:
        return self.cycles.get(category.value, 0)

    def fraction(self, category: CycleCategory) -> float:
        total = self.total
        return self.get(category) / total if total else 0.0

    @property
    def stall_cycles(self) -> int:
        """Cycles lost to this worker's *own* stalls (cache + FIFO)."""
        return (
            self.get(CycleCategory.CACHE)
            + self.get(CycleCategory.FIFO_FULL)
            + self.get(CycleCategory.FIFO_EMPTY)
        )

    @property
    def dominant_stall(self) -> CycleCategory | None:
        stalls = [
            CycleCategory.CACHE,
            CycleCategory.FIFO_FULL,
            CycleCategory.FIFO_EMPTY,
        ]
        best = max(stalls, key=self.get)
        return best if self.get(best) else None


@dataclass
class FifoDiagnosis:
    """Stall/occupancy summary for one FIFO buffer."""

    fifo: str
    depth: int
    max_occupancy: int
    full_stall_cycles: int
    empty_stall_cycles: int

    @property
    def saturated(self) -> bool:
        return self.depth > 0 and self.max_occupancy >= self.depth


@dataclass
class BottleneckReport:
    """Outcome of one bottleneck analysis."""

    total_cycles: int
    workers: list[WorkerBreakdown]
    fifos: list[FifoDiagnosis] = field(default_factory=list)
    critical_worker: str | None = None
    recommendations: list[str] = field(default_factory=list)

    def worker(self, name: str) -> WorkerBreakdown:
        for breakdown in self.workers:
            if breakdown.worker == name:
                return breakdown
        raise KeyError(name)

    def format(self) -> str:
        """Plain-text rendering (the trace CLI's analysis section)."""
        headers = ["worker", "cycles"] + [c.value for c in ALL_CATEGORIES]
        rows = []
        for b in sorted(self.workers, key=lambda b: -b.stall_cycles):
            mark = " *" if b.worker == self.critical_worker else ""
            rows.append(
                [b.worker + mark, str(b.total)]
                + [
                    f"{b.get(c)} ({100 * b.fraction(c):.0f}%)"
                    for c in ALL_CATEGORIES
                ]
            )
        widths = [len(h) for h in headers]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        fmt = lambda row: "  ".join(
            cell.ljust(w) for cell, w in zip(row, widths)
        ).rstrip()
        lines = ["Per-worker stall breakdown (* = critical stage)"]
        lines.append(fmt(headers))
        lines.append(fmt(["-" * w for w in widths]))
        lines.extend(fmt(row) for row in rows)
        if self.recommendations:
            lines.append("")
            lines.append("Recommendations:")
            lines.extend(f"  - {r}" for r in self.recommendations)
        return "\n".join(lines)


def _empty_counts() -> dict[str, int]:
    return {c.value: 0 for c in ALL_CATEGORIES}


def breakdown_from_trace(trace: MemoryTraceSink) -> list[WorkerBreakdown]:
    """Per-worker category totals recomputed from a recorded span cover."""
    trace.flush()
    per: dict[str, dict[str, int]] = {}
    for span in trace.spans:
        counts = per.setdefault(span.worker, _empty_counts())
        counts[span.category.value] += span.duration
    return [WorkerBreakdown(name, counts) for name, counts in per.items()]


def analyze(
    sim: "SimReport", trace: MemoryTraceSink | None = None
) -> BottleneckReport:
    """Analyze one simulated run (optionally cross-checked with a trace).

    The breakdown itself comes from the simulator's per-worker counters
    (always available, even with the :data:`~repro.telemetry.events.NULL_SINK`);
    a recorded trace only adds occupancy context via its samples.
    """
    workers = [
        WorkerBreakdown(name, dict(breakdown))
        for name, breakdown in sim.stall_breakdown.items()
    ]
    fifos = [
        FifoDiagnosis(
            fifo=name,
            depth=getattr(stats, "depth", 0),
            max_occupancy=stats.max_occupancy,
            full_stall_cycles=stats.full_stall_cycles,
            empty_stall_cycles=stats.empty_stall_cycles,
        )
        for name, stats in sim.fifo_stats.items()
    ]
    report = BottleneckReport(
        total_cycles=sim.cycles, workers=workers, fifos=fifos
    )
    stalled = [w for w in workers if w.stall_cycles]
    if stalled:
        report.critical_worker = max(stalled, key=lambda w: w.stall_cycles).worker
    report.recommendations = _recommend(report)
    return report


def analyze_trace(trace: MemoryTraceSink) -> BottleneckReport:
    """Analyze a recorded trace alone (no simulator report available)."""
    workers = breakdown_from_trace(trace)
    total = trace.total_cycles or max(
        (span.end for span in trace.spans), default=0
    )
    report = BottleneckReport(total_cycles=total, workers=workers)
    stalled = [w for w in workers if w.stall_cycles]
    if stalled:
        report.critical_worker = max(stalled, key=lambda w: w.stall_cycles).worker
    report.recommendations = _recommend(report)
    return report


def _recommend(report: BottleneckReport) -> list[str]:
    """Turn the breakdown into concrete FIFO-depth / replication advice."""
    out: list[str] = []
    total = max(report.total_cycles, 1)

    for fifo in report.fifos:
        if fifo.full_stall_cycles / total >= SIGNIFICANCE and fifo.saturated:
            out.append(
                f"{fifo.fifo} saturates (max occupancy {fifo.max_occupancy}/"
                f"{fifo.depth}, {fifo.full_stall_cycles} full-stall cycles): "
                f"deepen this FIFO to absorb bursts, or speed up / replicate "
                f"the consumer stage draining it"
            )

    if report.critical_worker is None:
        out.append(
            "no worker loses significant cycles to stalls: the pipeline is "
            "balanced; end-to-end time is bound by the slowest stage's compute"
        )
        return out

    critical = report.worker(report.critical_worker)
    dominant = critical.dominant_stall
    if dominant is None:
        return out
    frac = critical.fraction(dominant)
    if dominant is CycleCategory.CACHE:
        out.append(
            f"{critical.worker} is memory-bound ({100 * frac:.0f}% of cycles "
            f"stalled on the cache): consider private cache slices "
            f"(private_caches=True), next-line prefetch, or moving its loads "
            f"into an earlier stage so FIFO slack hides the latency"
        )
    elif dominant is CycleCategory.FIFO_FULL:
        out.append(
            f"{critical.worker} blocks pushing downstream ({100 * frac:.0f}% "
            f"of cycles on full FIFOs): the stage after it is the real "
            f"bottleneck — replicate that stage (raise n_workers) or deepen "
            f"the connecting FIFO"
        )
    elif dominant is CycleCategory.FIFO_EMPTY:
        out.append(
            f"{critical.worker} starves on empty FIFOs ({100 * frac:.0f}% of "
            f"cycles): the producer stage upstream limits throughput — "
            f"replicate or split the upstream stage, or deepen upstream "
            f"FIFOs if production is bursty"
        )
    if (
        critical.fraction(CycleCategory.COMPUTE) >= 0.5
        and critical.stall_cycles / total < SIGNIFICANCE
    ):
        out.append(
            f"{critical.worker} is compute-bound: replicate the stage or "
            f"re-partition to split its SCCs across more stages"
        )
    return out
