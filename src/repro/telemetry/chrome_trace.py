"""chrome://tracing (Trace Event Format) exporter.

Converts a recorded :class:`~repro.telemetry.events.MemoryTraceSink` into
the JSON object format understood by ``chrome://tracing`` and Perfetto:
one thread track per worker (complete "X" events, one per category span),
one counter track per FIFO queue (occupancy over time), and a memory
track with one event per cache miss.  Cycle numbers map directly to
microsecond timestamps so one trace-viewer tick is one simulated cycle.
"""

from __future__ import annotations

import json
from typing import IO

from .events import CycleCategory, MemoryTraceSink

#: Process ids for the three track groups.
PID_WORKERS = 1
PID_FIFOS = 2
PID_CACHE = 3

#: Stable viewer colours per category (Trace Event ``cname`` values).
_CNAME: dict[CycleCategory, str] = {
    CycleCategory.COMPUTE: "thread_state_running",
    CycleCategory.CACHE: "thread_state_iowait",
    CycleCategory.FIFO_FULL: "terrible",
    CycleCategory.FIFO_EMPTY: "bad",
    CycleCategory.JOIN: "thread_state_sleeping",
    CycleCategory.IDLE: "grey",
}


def _metadata(pid: int, name: str) -> dict:
    return {
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "args": {"name": name},
    }


def _thread_name(pid: int, tid: int, name: str) -> dict:
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def to_chrome_trace(trace: MemoryTraceSink) -> dict:
    """Build the Trace Event Format object for a recorded run."""
    trace.flush()
    events: list[dict] = [
        _metadata(PID_WORKERS, "workers"),
        _metadata(PID_FIFOS, "fifo buffers"),
        _metadata(PID_CACHE, "cache"),
        _thread_name(PID_CACHE, 0, "shared D-cache"),
    ]

    worker_tids = {name: i for i, name in enumerate(trace.worker_names)}
    for name, tid in worker_tids.items():
        events.append(_thread_name(PID_WORKERS, tid, name))

    for span in trace.spans:
        events.append({
            "name": span.category.value,
            "cat": "worker",
            "ph": "X",
            "ts": span.start,
            "dur": span.duration,
            "pid": PID_WORKERS,
            "tid": worker_tids.setdefault(span.worker, len(worker_tids)),
            "cname": _CNAME[span.category],
        })

    for change in trace.state_changes:
        events.append({
            "name": "fsm",
            "cat": "fsm",
            "ph": "i",
            "s": "t",
            "ts": change.cycle,
            "pid": PID_WORKERS,
            "tid": worker_tids.setdefault(change.worker, len(worker_tids)),
            "args": {"block": change.block, "state": change.state},
        })

    for sample in trace.occupancy:
        events.append({
            "name": f"{sample.fifo}[q{sample.queue}]",
            "cat": "fifo",
            "ph": "C",
            "ts": sample.cycle,
            "pid": PID_FIFOS,
            "tid": 0,
            "args": {"occupancy": sample.occupancy},
        })

    for access in trace.cache_accesses:
        if access.hit:
            continue  # hits are too dense to draw; the breakdown has them
        events.append({
            "name": "store miss" if access.is_write else "load miss",
            "cat": "cache",
            "ph": "X",
            "ts": access.cycle,
            "dur": max(access.latency, 1),
            "pid": PID_CACHE,
            "tid": 0,
            "args": {"addr": access.addr},
        })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "repro.telemetry",
            "time_unit": "1 ts = 1 cycle",
            "total_cycles": trace.total_cycles,
        },
    }


def write_chrome_trace(trace: MemoryTraceSink, fp: IO[str]) -> None:
    """Serialise ``trace`` as chrome://tracing JSON onto ``fp``."""
    json.dump(to_chrome_trace(trace), fp, indent=None, separators=(",", ":"))


def dump_chrome_trace(trace: MemoryTraceSink, path: str) -> None:
    """Write the chrome://tracing JSON for ``trace`` to ``path``."""
    with open(path, "w") as fp:
        write_chrome_trace(trace, fp)
