"""Cycle-accurate telemetry: tracing, stall attribution, bottleneck analysis.

The observability layer over the hardware simulator (see the
"Observability" sections of README.md and DESIGN.md):

* :mod:`repro.telemetry.events` — the sink protocol, the zero-overhead
  :data:`NULL_SINK` default, and the recording :class:`MemoryTraceSink`;
* :mod:`repro.telemetry.chrome_trace` — chrome://tracing JSON exporter;
* :mod:`repro.telemetry.vcd` — VCD waveform exporter;
* :mod:`repro.telemetry.bottleneck` — stall breakdowns, critical-stage
  identification and FIFO-depth / replication recommendations.
"""

from .bottleneck import (
    BottleneckReport,
    FifoDiagnosis,
    WorkerBreakdown,
    analyze,
    analyze_trace,
    breakdown_from_trace,
)
from .chrome_trace import dump_chrome_trace, to_chrome_trace, write_chrome_trace
from .events import (
    ALL_CATEGORIES,
    CATEGORY_CODES,
    CacheAccess,
    CycleCategory,
    MemoryTraceSink,
    NULL_SINK,
    NullSink,
    OccupancySample,
    Span,
    StateChange,
    TraceSink,
)
from .vcd import dump_vcd, write_vcd

__all__ = [
    "CycleCategory", "ALL_CATEGORIES", "CATEGORY_CODES",
    "TraceSink", "NullSink", "NULL_SINK", "MemoryTraceSink",
    "Span", "StateChange", "OccupancySample", "CacheAccess",
    "to_chrome_trace", "write_chrome_trace", "dump_chrome_trace",
    "write_vcd", "dump_vcd",
    "analyze", "analyze_trace", "breakdown_from_trace",
    "BottleneckReport", "WorkerBreakdown", "FifoDiagnosis",
]
