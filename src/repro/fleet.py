"""One shared process-pool executor for every parallel fan-out.

Before this module each parallel consumer owned its own machinery:
:mod:`repro.dse.explore` created a fresh ``multiprocessing.Pool`` per
evaluation batch (paying process startup for every strategy round),
fault sweeps ran strictly serially, and the service job queue only knew
about threads.  :class:`FleetExecutor` is the one reusable executor they
all share:

* **ordered map** — ``map(fn, tasks)`` always returns results in task
  order, so every consumer's determinism contract (byte-identical
  reports at any pool size) holds by construction;
* **serial == pool** — at ``processes=1`` the *same* task function runs
  inline in the parent, so the serial path and the pool path execute
  identical code and produce identical bytes;
* **reusable** — the underlying ``ProcessPoolExecutor`` is created
  lazily and kept across ``map`` calls, so per-process caches (compiled
  pipelines, interned workload images) amortize across batches, sweep
  rounds and queue jobs;
* **futures bridge** — :attr:`futures_pool` exposes the pool as a
  ``concurrent.futures.Executor`` for ``loop.run_in_executor`` (the
  service job queue's integration point).

Task functions must be module-level (picklable) and should memoize their
heavy state in module globals keyed by task parameters — each pool
process then compiles a kernel once, no matter how many tasks land on
it.  :func:`interned_workload` is the shared half of that pattern: it
runs a kernel's functional setup once per ``(module, kernel)`` per
process and stamps out :meth:`~repro.interp.memory.Memory.clone`\\ s,
so simulations pay for a memory image copy instead of re-interpreting
the setup function.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor
from typing import TYPE_CHECKING, Callable, Iterable

from .harness.runner import setup_workload

if TYPE_CHECKING:  # pragma: no cover
    from .interp.memory import Memory
    from .kernels import KernelSpec

#: Interned post-setup workload images, per process:
#: ``(id(module), kernel, setup_args) -> (module, memory, globals,
#: args)``.  The module object is kept in the value so its id stays
#: valid for the memo's lifetime; setup_args is in the key because two
#: specs may share a module but build different-scale workloads.
_WORKLOAD_MEMO: dict = {}

#: Entries kept before the workload memo is dropped wholesale (each
#: pristine image is a full memory copy, so the cap bounds resident
#: bytes, not correctness).
_WORKLOAD_MEMO_ENTRIES = 32


def interned_workload(module, spec: "KernelSpec"):
    """``setup_workload`` through a per-process image cache.

    Returns ``(memory, globals, args)`` exactly like
    :func:`repro.harness.runner.setup_workload`, but the functional
    setup runs only once per ``(module, kernel)`` in this process; every
    call gets a fresh :meth:`~repro.interp.memory.Memory.clone` of the
    pristine image (bit-identical to a fresh setup, including the
    allocator break and access counters).
    """
    key = (id(module), spec.name, tuple(spec.setup_args))
    entry = _WORKLOAD_MEMO.get(key)
    if entry is None:
        if len(_WORKLOAD_MEMO) >= _WORKLOAD_MEMO_ENTRIES:
            _WORKLOAD_MEMO.clear()
        memory, globals_, args = setup_workload(module, spec)
        entry = _WORKLOAD_MEMO[key] = (module, memory, globals_, args)
    _, memory, globals_, args = entry
    return memory.clone(), dict(globals_), list(args)


class FleetExecutor:
    """A reusable, order-preserving process-pool executor.

    ``processes=1`` (the default) never spawns anything: tasks run
    inline, in submission order, through the same task functions the
    pool would use.  ``processes>1`` lazily creates one
    ``ProcessPoolExecutor`` and reuses it for every subsequent ``map``
    until :meth:`close`.
    """

    def __init__(self, processes: int = 1) -> None:
        self.processes = max(1, int(processes))
        self._pool: ProcessPoolExecutor | None = None

    @property
    def serial(self) -> bool:
        return self.processes == 1

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.processes)
        return self._pool

    @property
    def futures_pool(self) -> Executor:
        """The underlying ``concurrent.futures`` executor (created on
        first use), for APIs that take an Executor — e.g.
        ``loop.run_in_executor`` in the service job queue."""
        return self._ensure_pool()

    def map(self, fn: Callable, tasks: Iterable) -> list:
        """Apply ``fn`` to every task; results in task order.

        A single task (or a serial executor) runs inline — identical
        code path, identical bytes, no process round-trip.
        """
        tasks = list(tasks)
        if self.serial or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        return list(self._ensure_pool().map(fn, tasks))

    def close(self) -> None:
        """Shut the pool down (idempotent; the executor stays usable —
        the next ``map`` recreates the pool)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "FleetExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
