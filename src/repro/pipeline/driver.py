"""End-to-end CGPA compilation driver (Figure 3's "Transformation" box).

``cgpa_compile`` takes C source (or an already-lowered module), runs the
standard optimizations, picks the target loop (hottest top-level loop of
the kernel function, via profiling when an input is supplied), builds the
PDG, partitions, and transforms — returning everything downstream layers
(RTL backend, hardware simulator, benchmarks) need.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.loops import Loop, LoopInfo
from ..analysis.pdg import ProgramDependenceGraph
from ..analysis.pointsto import PointsTo
from ..analysis.shapes import RegionShapes
from ..errors import CgpaError
from ..frontend import compile_c
from ..interp.profiler import Profile, profile_call
from ..ir.module import Module
from ..ir.primitives import DEFAULT_FIFO_DEPTH
from ..transforms import optimize_module
from .partition import partition_loop
from .spec import DEFAULT_PARALLEL_WORKERS, PipelineSpec, ReplicationPolicy
from .transform import TransformResult, transform_loop


@dataclass
class CompiledPipeline:
    """The output of one CGPA compilation."""

    module: Module
    kernel_name: str
    loop: Loop
    pdg: ProgramDependenceGraph
    spec: PipelineSpec
    result: TransformResult
    profile: Profile | None

    @property
    def signature(self) -> str:
        return self.spec.signature

    @property
    def full_signature(self) -> str:
        """Unambiguous label (shape/policy/workers/depth) for sweep reports."""
        return self.spec.full_signature


def cgpa_compile(
    source: str | Module,
    kernel: str,
    shapes: RegionShapes | None = None,
    policy: ReplicationPolicy = ReplicationPolicy.P1,
    n_workers: int = DEFAULT_PARALLEL_WORKERS,
    fifo_depth: int = DEFAULT_FIFO_DEPTH,
    profile_entry: str | None = None,
    profile_args: list[int | float] | None = None,
    loop_index: int = 0,
    module_name: str = "kernel",
    rewrite_parent: bool = True,
) -> CompiledPipeline:
    """Compile one loop of ``kernel`` into a CGPA pipeline.

    Args:
        source: C source text, or a pre-built (unoptimized) module.
        kernel: function whose loop is accelerated.
        shapes: region shape facts (default: fully conservative).
        policy: replicable-section placement (P1 / P2 / NONE).
        n_workers: parallel-stage worker count (paper default 4).
        fifo_depth: FIFO entries per channel (paper default 16).
        profile_entry/profile_args: optional training run for SCC weights
            and hottest-loop selection.
        loop_index: which top-level loop to take when not profiling
            (default: the first; with profiling: the hottest).
    """
    if isinstance(source, Module):
        module = source
    else:
        module = compile_c(source, module_name)
    optimize_module(module)

    profile = None
    if profile_entry is not None:
        profile = profile_call(module, profile_entry, profile_args or [])

    function = module.get_function(kernel)
    loops = LoopInfo(function).top_level()
    if not loops:
        raise CgpaError(f"@{kernel} has no loops to accelerate")
    loop = _select_loop(loops, profile, loop_index)

    pointsto = PointsTo(module)
    pdg = ProgramDependenceGraph(loop, pointsto, shapes, profile)
    spec = partition_loop(pdg, n_workers=n_workers, policy=policy)
    result = transform_loop(
        module, spec, fifo_depth=fifo_depth, rewrite_parent=rewrite_parent
    )
    return CompiledPipeline(
        module=module,
        kernel_name=kernel,
        loop=loop,
        pdg=pdg,
        spec=spec,
        result=result,
        profile=profile,
    )


def _select_loop(loops: list[Loop], profile: Profile | None, loop_index: int) -> Loop:
    if profile is None:
        return loops[min(loop_index, len(loops) - 1)]
    # Hotspot identification: heaviest top-level loop by dynamic count.
    def weight(loop: Loop) -> int:
        return sum(profile.count(i) for i in loop.instructions())

    return max(loops, key=weight)


def cgpa_compile_all(
    source: str | Module,
    kernel: str,
    shapes: RegionShapes | None = None,
    policy: ReplicationPolicy = ReplicationPolicy.P1,
    n_workers: int = DEFAULT_PARALLEL_WORKERS,
    fifo_depth: int = DEFAULT_FIFO_DEPTH,
    module_name: str = "kernel",
) -> list[CompiledPipeline]:
    """Accelerate *every* top-level loop of ``kernel``.

    Each loop gets its own pipeline with a distinct loop id, exactly the
    situation the paper's scheduling constraint (2) exists for: the
    parent invokes several accelerators, and forks of different loops
    must not share an FSM state.  Loops are processed in reverse program
    order so earlier rewrites don't invalidate later loop structures.
    """
    if isinstance(source, Module):
        module = source
    else:
        module = compile_c(source, module_name)
    optimize_module(module)
    function = module.get_function(kernel)
    pointsto = PointsTo(module)
    compiled: list[CompiledPipeline] = []
    # Discover all loops up front; rewrite from the last to the first so
    # header identities of not-yet-processed loops stay intact.
    loops = LoopInfo(function).top_level()
    if not loops:
        raise CgpaError(f"@{kernel} has no loops to accelerate")
    for loop_id, loop in reversed(list(enumerate(loops))):
        pdg = ProgramDependenceGraph(loop, pointsto, shapes, None)
        spec = partition_loop(pdg, n_workers=n_workers, policy=policy)
        result = transform_loop(
            module, spec, loop_id=loop_id, fifo_depth=fifo_depth,
            rewrite_parent=True,
        )
        compiled.append(
            CompiledPipeline(
                module=module,
                kernel_name=kernel,
                loop=loop,
                pdg=pdg,
                spec=spec,
                result=result,
                profile=None,
            )
        )
    compiled.reverse()
    return compiled
