"""Functional co-simulation of transformed pipelines.

Runs the transformed parent under the interpreter; ``parallel_fork``
registers one task interpreter per worker and ``parallel_join`` drives
them round-robin over unbounded in-order channels until every task
finishes.  No timing is modelled — this layer answers only "does the
pipelined program compute exactly what the sequential one did?", which is
the property the paper's generated testbenches assert.

The cycle-accurate hardware model lives in :mod:`repro.hw`; both layers
share the task functions and channel plan, so functional equivalence here
validates the transform for the hardware simulation as well.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..interp.interpreter import ChannelIO, Interpreter, Status
from ..interp.memory import Memory
from ..ir.instructions import ParallelFork
from ..ir.module import Module
from .transform import TaskInfo


class FunctionalForkHandler:
    """Executes forked tasks at join time (cooperative round-robin)."""

    def __init__(
        self,
        module: Module,
        memory: Memory,
        global_addresses: dict[str, int],
        channel_io: ChannelIO | None = None,
    ) -> None:
        self.module = module
        self.memory = memory
        self.global_addresses = global_addresses
        self.channel_io = channel_io if channel_io is not None else ChannelIO()
        self._pending: dict[int, list[Interpreter]] = {}
        #: Total interpreter steps spent inside tasks (for rough stats).
        self.task_steps = 0

    def fork(self, inst: ParallelFork, livein_values: list[int | float]) -> None:
        info = inst.task.task_info
        worker_id = inst.worker_id if inst.worker_id is not None else 0
        args = list(livein_values)
        if isinstance(info, TaskInfo) and info.is_parallel:
            args.append(worker_id)
        machine = Interpreter(
            self.module,
            self.memory,
            channel_io=self.channel_io,
            worker_id=worker_id,
            global_addresses=self.global_addresses,
        )
        machine.start(inst.task, args)
        self._pending.setdefault(inst.loop_id, []).append(machine)

    def join(self, loop_id: int) -> None:
        machines = self._pending.pop(loop_id, [])
        while True:
            progressed = False
            done = 0
            for machine in machines:
                if machine.done:
                    done += 1
                    continue
                executed = 0
                status = machine.step()
                while status is Status.RUNNING:
                    executed += 1
                    status = machine.step()
                if status is Status.DONE:
                    done += 1
                    executed += 1
                self.task_steps += machine.steps
                machine.steps = 0
                if executed:
                    progressed = True
            if done == len(machines):
                return
            if not progressed:
                raise SimulationError(
                    f"pipeline deadlock: {len(machines) - done} task(s) "
                    f"blocked on empty channels"
                )


def run_transformed(
    module: Module,
    entry: str,
    args: list[int | float],
    memory: Memory | None = None,
):
    """Run a transformed module functionally; returns (result, memory, handler)."""
    memory = memory if memory is not None else Memory()
    # The parent shares the channel IO so retrieve_liveout sees the task
    # workers' store_liveout registers.
    channel_io = ChannelIO()
    parent = Interpreter(module, memory, channel_io=channel_io)
    handler = FunctionalForkHandler(
        module, memory, parent.global_addresses, channel_io
    )
    parent.fork_handler = handler
    result = parent.call(entry, args)
    return result, memory, handler
