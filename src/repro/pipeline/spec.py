"""Pipeline specification datatypes.

The partitioner (:mod:`repro.pipeline.partition`) produces a
:class:`PipelineSpec`; the transformer (:mod:`repro.pipeline.transform`)
consumes it to generate task functions; the RTL backend and the hardware
simulator consume the generated tasks plus the spec's channel plan.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..analysis.loops import Loop
from ..analysis.pdg import ProgramDependenceGraph, SccInfo
from ..ir.instructions import Instruction

#: Paper Section 4.1: four workers in the parallel stage.
DEFAULT_PARALLEL_WORKERS = 4


class StageKind(enum.Enum):
    """Pipeline stage flavour: sequential (one worker) or parallel."""

    SEQUENTIAL = "sequential"
    PARALLEL = "parallel"


class ReplicationPolicy(enum.Enum):
    """Where replicable sections go (the P1 / P2 knob of Tables 2-3).

    * ``P1`` — the paper's default heuristic: duplicate only *lightweight*
      replicable sections (no load / multiply); heavyweight ones become
      sequential stages.
    * ``P2`` — force-duplicate every replicable section into the parallel
      stage (the replicated data-level parallelism variant evaluated for
      em3d and 1D-Gaussblur).
    * ``NONE`` — never duplicate (every replicable section is sequential);
      used by ablation benchmarks.
    """

    P1 = "p1"
    P2 = "p2"
    NONE = "none"


@dataclass
class StageSpec:
    """One pipeline stage: the SCCs it owns plus stage shape."""

    index: int
    kind: StageKind
    n_workers: int
    sccs: list[SccInfo] = field(default_factory=list)

    @property
    def is_parallel(self) -> bool:
        return self.kind is StageKind.PARALLEL

    def owned_instructions(self) -> list[Instruction]:
        out: list[Instruction] = []
        for scc in self.sccs:
            out.extend(scc.instructions)
        return out

    @property
    def weight(self) -> int:
        return sum(scc.weight for scc in self.sccs)

    @property
    def letter(self) -> str:
        return "P" if self.is_parallel else "S"


@dataclass
class PipelineSpec:
    """Complete partition of one loop into pipeline stages."""

    loop: Loop
    pdg: ProgramDependenceGraph
    stages: list[StageSpec]
    #: SCCs duplicated into every stage that needs their values (and into
    #: every parallel worker's both loop bodies).
    replicated: list[SccInfo] = field(default_factory=list)
    policy: ReplicationPolicy = ReplicationPolicy.P1
    #: FIFO entries per channel as realized by the transformer; ``None``
    #: until :func:`repro.pipeline.transform.transform_loop` has run.
    fifo_depth: int | None = None

    @property
    def signature(self) -> str:
        """Stage shape string as in Table 2: "S-P-S", "S-P", "P-S", "P".

        .. deprecated:: retained for the Table-2 comparisons; it is
           *ambiguous* as a configuration label ("S-P" says nothing about
           the replication policy, worker count or FIFO depth that
           produced it).  Cache keys and sweep labels must use
           :attr:`full_signature` instead.
        """
        return "-".join(stage.letter for stage in self.stages)

    @property
    def full_signature(self) -> str:
        """Unambiguous configuration label: shape + policy + workers + depth.

        E.g. ``"S-P-S/p1/w4/d16"``.  Unlike :attr:`signature`, two
        different configurations can never collide, which is what the
        design-space explorer's cache keys and report labels require.
        """
        parallel = self.parallel_stage
        workers = parallel.n_workers if parallel is not None else 1
        depth = "?" if self.fifo_depth is None else str(self.fifo_depth)
        return f"{self.signature}/{self.policy.value}/w{workers}/d{depth}"

    @property
    def parallel_stage(self) -> StageSpec | None:
        for stage in self.stages:
            if stage.is_parallel:
                return stage
        return None

    @property
    def total_workers(self) -> int:
        return sum(stage.n_workers for stage in self.stages)

    def stage_of(self, inst: Instruction) -> StageSpec | None:
        """The stage *owning* an instruction (None for replicated ones)."""
        scc = self.pdg.scc_of(inst)
        for stage in self.stages:
            if any(s.index == scc.index for s in stage.sccs):
                return stage
        return None

    def is_replicated(self, inst: Instruction) -> bool:
        scc = self.pdg.scc_of(inst)
        return any(s.index == scc.index for s in self.replicated)

    def describe(self) -> str:
        lines = [f"pipeline {self.signature} ({self.policy.value})"]
        for stage in self.stages:
            insts = sum(len(s.instructions) for s in stage.sccs)
            lines.append(
                f"  stage {stage.index}: {stage.kind.value} x{stage.n_workers}, "
                f"{len(stage.sccs)} SCCs, {insts} insts, weight {stage.weight}"
            )
        if self.replicated:
            insts = sum(len(s.instructions) for s in self.replicated)
            lines.append(f"  replicated: {len(self.replicated)} SCCs, {insts} insts")
        return "\n".join(lines)
