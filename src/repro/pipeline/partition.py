"""Pipeline partitioning: assign PDG SCCs to pipeline stages.

Adapted from PS-DSWP (Raman et al.) exactly as the paper describes: the
partitioner finds the maximal parallel stage, places the remaining SCCs
into a sequential stage before and/or after it, and decides for every
*replicable* SCC whether to duplicate it into the workers (lightweight —
no load or multiply) or give it a sequential stage of its own (heavyweight)
— Section 3.3, "Pipeline Partition".

Legality rules enforced here:

1. All dependence edges flow forward through the stage order (the SCC
   condensation is a DAG, so a consistent order exists unless the parallel
   stage sits on a cycle with a sequential SCC — resolved by demoting
   parallel SCCs).
2. No loop-carried dependence connects two *distinct, non-replicated*
   members of the parallel stage (different iterations run on different
   workers concurrently).  Carried edges into replicated sections are
   legal only from other replicated sections or from sequential stages
   (delivered by broadcast).
"""

from __future__ import annotations

from ..errors import PartitionError
from ..analysis.pdg import ProgramDependenceGraph, SccClass, SccInfo
from .spec import (
    DEFAULT_PARALLEL_WORKERS,
    PipelineSpec,
    ReplicationPolicy,
    StageKind,
    StageSpec,
)


def partition_loop(
    pdg: ProgramDependenceGraph,
    n_workers: int = DEFAULT_PARALLEL_WORKERS,
    policy: ReplicationPolicy = ReplicationPolicy.P1,
) -> PipelineSpec:
    """Partition ``pdg``'s loop into an (S-)P(-S) pipeline."""
    partitioner = _Partitioner(pdg, n_workers, policy)
    return partitioner.run()


class _Partitioner:
    def __init__(
        self,
        pdg: ProgramDependenceGraph,
        n_workers: int,
        policy: ReplicationPolicy,
    ) -> None:
        self.pdg = pdg
        self.n_workers = n_workers
        self.policy = policy
        self.sccs = pdg.sccs
        # Mutable working sets of SCC indices.
        self.parallel: set[int] = set()
        self.replicated: set[int] = set()
        self.forced_sequential: set[int] = set()

    # -- helpers --------------------------------------------------------------------

    def _scc(self, index: int) -> SccInfo:
        return self.sccs[index]

    def _may_replicate(self, scc: SccInfo) -> bool:
        if scc.has_side_effects:
            return False
        if self.policy is ReplicationPolicy.NONE:
            return False
        if self.policy is ReplicationPolicy.P2:
            return True
        return scc.is_lightweight

    def _edges(self) -> dict[tuple[int, int], bool]:
        return self.pdg.condensation.edges

    def _successor_map(self) -> dict[int, list[int]]:
        succ: dict[int, list[int]] = {}
        for (s, d) in self._edges():
            succ.setdefault(s, []).append(d)
        return succ

    def _reachable_from(self, sources: set[int]) -> set[int]:
        succ = self._successor_map()
        seen = set(sources)
        work = list(sources)
        while work:
            node = work.pop()
            for nxt in succ.get(node, []):
                if nxt not in seen:
                    seen.add(nxt)
                    work.append(nxt)
        return seen

    def _reaches(self, targets: set[int]) -> set[int]:
        pred: dict[int, list[int]] = {}
        for (s, d) in self._edges():
            pred.setdefault(d, []).append(s)
        seen = set(targets)
        work = list(targets)
        while work:
            node = work.pop()
            for nxt in pred.get(node, []):
                if nxt not in seen:
                    seen.add(nxt)
                    work.append(nxt)
        return seen

    # -- main ------------------------------------------------------------------------

    def run(self) -> PipelineSpec:
        self.parallel = {
            scc.index for scc in self.sccs if scc.classification is SccClass.PARALLEL
        }
        self.replicated = {
            scc.index
            for scc in self.sccs
            if scc.classification is SccClass.REPLICABLE and self._may_replicate(scc)
        }
        self._repair()
        return self._form_stages()

    def _repair(self) -> None:
        """Iterate legality fixes until a consistent partition remains."""
        for _ in range(len(self.sccs) * 4 + 8):
            if self._fix_carried_within_parallel():
                continue
            if self._fix_replicated_inputs():
                continue
            if self._fix_ordering_conflicts():
                continue
            return
        raise PartitionError("partition repair did not converge")

    def _replicable_closure(self, seed: int) -> set[int] | None:
        """SCCs that must be replicated together with ``seed``.

        Replicated code runs every iteration in every worker, so all of
        its inputs coming from the parallel stage must be replicated too
        (transitively).  Returns None when any member of the closure
        cannot be replicated — replication of the seed is then hopeless
        and the caller should fall back to sequential placement.
        """
        closure: set[int] = set()
        work = [seed]
        while work:
            current = work.pop()
            if current in closure:
                continue
            if not self._may_replicate(self._scc(current)):
                return None
            closure.add(current)
            for (a, b) in self._edges():
                if b == current and a in self.parallel and a not in closure:
                    work.append(a)
        return closure

    def _fix_carried_within_parallel(self) -> bool:
        """Rule 2: carried edges between distinct parallel-stage members."""
        for edge in self.pdg.edges:
            if not edge.carried:
                continue
            src_scc = self.pdg.scc_of(edge.src)
            dst_scc = self.pdg.scc_of(edge.dst)
            if src_scc.index == dst_scc.index:
                continue
            if src_scc.index in self.parallel and dst_scc.index in self.parallel:
                # The destination carries state across iterations; it must
                # be replicated (every worker recomputes it each iteration)
                # or leave the parallel stage.
                closure = self._replicable_closure(dst_scc.index)
                if closure is not None:
                    self.parallel -= closure
                    self.replicated |= closure
                else:
                    self.parallel.discard(dst_scc.index)
                    self.forced_sequential.add(dst_scc.index)
                return True
        return False

    def _fix_replicated_inputs(self) -> bool:
        """Replicated code needs every input every iteration in every
        worker; a value computed by a non-replicated parallel SCC exists
        only on one worker per iteration.

        Three resolutions, in preference order:

        1. replicate the source too (it is lightweight / P2 allows it);
        2. demote the source into a sequential stage that *broadcasts* its
           value — the paper's 1D-Gaussblur shape, where the heavyweight
           image load (R3) feeds the replicated shift registers (R2) from
           stage 1 — chosen when the source is a small share of the
           parallel stage and nothing else in the stage feeds it;
        3. give up replicating the destination (the ks shape: the max
           reduction fed by the heavyweight gain computation becomes a
           sequential stage of its own).
        """
        for (s, d) in list(self._edges()):
            if d in self.replicated and s in self.parallel:
                closure = self._replicable_closure(s)
                if closure is not None:
                    self.parallel -= closure
                    self.replicated |= closure
                elif self._demotable_source(s):
                    self.parallel.discard(s)
                    self.forced_sequential.add(s)
                else:
                    self.replicated.discard(d)
                    self.forced_sequential.add(d)
                return True
        return False

    def _demotable_source(self, s: int) -> bool:
        """Is moving SCC ``s`` into a sequential stage cheaper than losing
        the replication of its consumer?"""
        parallel_weight = sum(self._scc(i).weight for i in self.parallel)
        if self._scc(s).weight > 0.3 * parallel_weight:
            return False
        # Demotion positions s before the parallel stage; anything in the
        # parallel stage feeding s would then flow backwards.
        other_parallel = self.parallel - {s}
        return s not in self._reachable_from(other_parallel)

    def _fix_ordering_conflicts(self) -> bool:
        """Rule 1: a sequential SCC that both feeds and consumes the
        parallel stage would need to be before and after it at once."""
        others = {
            scc.index
            for scc in self.sccs
            if scc.index not in self.parallel and scc.index not in self.replicated
        }
        if not others or not self.parallel:
            return False
        reaches_p = self._reaches(set(self.parallel))
        from_p = self._reachable_from(set(self.parallel))
        for u in sorted(others):
            if u in reaches_p and u in from_p and u not in self.parallel:
                # Demote the lighter flank of the parallel stage.
                ancestors = self._reaches({u}) & self.parallel
                descendants = self._reachable_from({u}) & self.parallel
                flank = min(
                    (ancestors, descendants),
                    key=lambda s: sum(self._scc(i).weight for i in s),
                )
                if not flank:
                    flank = ancestors or descendants
                if not flank:
                    raise PartitionError(
                        "ordering conflict with no demotable parallel SCC"
                    )
                for index in flank:
                    self.parallel.discard(index)
                    self.forced_sequential.add(index)
                return True
        return False

    def _form_stages(self) -> PipelineSpec:
        others = [
            scc
            for scc in self.sccs
            if scc.index not in self.parallel and scc.index not in self.replicated
        ]
        if not self.parallel:
            # Degenerate: no parallel stage at all — one sequential stage.
            stage = StageSpec(0, StageKind.SEQUENTIAL, 1, list(self.sccs))
            return PipelineSpec(
                loop=self.pdg.loop,
                pdg=self.pdg,
                stages=[stage],
                replicated=[],
                policy=self.policy,
            )

        reaches_p = self._reaches(set(self.parallel))
        from_p = self._reachable_from(set(self.parallel))
        before: list[SccInfo] = []
        after: list[SccInfo] = []
        for scc in others:
            if scc.index in reaches_p:
                before.append(scc)
            elif scc.index in from_p:
                after.append(scc)
            else:
                before.append(scc)  # disconnected: run it in the front stage

        self._check_stage_order(before, after)

        stages: list[StageSpec] = []
        if before:
            stages.append(
                StageSpec(len(stages), StageKind.SEQUENTIAL, 1, _in_topo(self, before))
            )
        parallel_sccs = [self._scc(i) for i in sorted(self.parallel)]
        stages.append(
            StageSpec(len(stages), StageKind.PARALLEL, self.n_workers, parallel_sccs)
        )
        if after:
            stages.append(
                StageSpec(len(stages), StageKind.SEQUENTIAL, 1, _in_topo(self, after))
            )
        return PipelineSpec(
            loop=self.pdg.loop,
            pdg=self.pdg,
            stages=stages,
            replicated=[self._scc(i) for i in sorted(self.replicated)],
            policy=self.policy,
        )

    def _check_stage_order(self, before: list[SccInfo], after: list[SccInfo]) -> None:
        before_ids = {s.index for s in before}
        after_ids = {s.index for s in after}
        for (s, d) in self._edges():
            if s in after_ids and (d in before_ids or d in self.parallel):
                raise PartitionError(
                    f"dependence from stage-3 SCC {s} back to SCC {d}"
                )
            if s in self.parallel and d in before_ids:
                raise PartitionError(
                    f"dependence from parallel SCC {s} back to stage-1 SCC {d}"
                )


def _in_topo(partitioner: _Partitioner, sccs: list[SccInfo]) -> list[SccInfo]:
    order = partitioner.pdg.condensation.topological_order()
    position = {index: i for i, index in enumerate(order)}
    return sorted(sccs, key=lambda s: position[s.index])
