"""Pipeline transformation: generate per-stage task functions (MTCG).

Implements Section 3.3 "Pipeline Transform" of the paper:

* every task gets a **control-equivalent** clone of the target loop — same
  iterations, same exit points — with only its stage's instructions
  materialised and irrelevant control regions short-circuited;
* cross-stage register dependences become ``produce``/``consume`` pairs
  inserted at the *definition site* in both the producer's and consumer's
  clones, which keeps FIFO traffic aligned with control flow;
* branch conditions a stage cannot compute locally are consumed from the
  owning stage (``produce_broadcast`` for parallel consumers — the "end
  token" of Figure 1(e));
* parallel-stage workers receive a worker-id argument and **two loop
  bodies**: body 1 executes the worker's own iterations (owned + replicated
  work), body 2 executes only the replicated sections so loop-carried
  recurrences stay warm on every worker every iteration;
* live-outs are latched with ``store_liveout`` before task exit and read
  back in the parent with ``retrieve_liveout``;
* the parent's loop is replaced by ``parallel_fork``/``parallel_join``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.dominators import postdominator_tree
from ..analysis.cfg import remove_unreachable_blocks
from ..analysis.pdg import DepKind
from ..errors import TransformError
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BinaryOp,
    CondBranch,
    Consume,
    ICmp,
    Instruction,
    Jump,
    ParallelFork,
    ParallelJoin,
    Phi,
    Produce,
    ProduceBroadcast,
    Ret,
    RetrieveLiveout,
    StoreLiveout,
)
from ..ir.module import Module
from ..ir.primitives import Channel, ChannelPlan, DEFAULT_FIFO_DEPTH
from ..ir.types import I32, VOID, FunctionType
from ..ir.values import Argument, Constant, GlobalVariable, Value
from ..ir.verifier import verify_function
from .spec import PipelineSpec, StageKind, StageSpec


@dataclass
class TaskInfo:
    """Metadata attached to generated task functions."""

    loop_id: int
    stage_index: int
    kind: StageKind
    n_workers: int

    @property
    def is_parallel(self) -> bool:
        return self.kind is StageKind.PARALLEL


@dataclass
class BodyPlan:
    """What one loop-body clone of a task materialises."""

    materialized: set[int]  # ids of instructions computed locally
    needed_branches: set[int]  # ids of CondBranch instructions kept
    consumed: list[Instruction]  # defs consumed from other stages, in order


@dataclass
class StagePlan:
    """All body plans of one stage (two for parallel stages)."""

    stage: StageSpec
    bodies: list[BodyPlan]  # [full] for sequential, [full, replicated] parallel

    @property
    def full(self) -> BodyPlan:
        return self.bodies[0]


@dataclass
class ChannelBinding:
    """One communicated value: its channel plus produce/consume modes."""

    value: Instruction
    channel: Channel
    producer_stage: int
    consumer_stage: int
    broadcast: bool
    #: Block where produce/consume are placed.  Defaults to the def's
    #: block; hoisted out of inner loops when the consumer only needs the
    #: value once per target-loop iteration (e.g. an inner-loop reduction
    #: result) — without hoisting, the FIFO would carry every intermediate
    #: value of the recurrence.
    placement: BasicBlock | None = None


@dataclass
class TransformResult:
    """Everything the backend and simulator need about one pipelined loop."""

    spec: PipelineSpec
    parent: Function
    tasks: list[Function]  # one per stage (parallel stage shares one task)
    channels: ChannelPlan
    bindings: list[ChannelBinding]
    liveins: list[Value]
    liveout_ids: dict[int, int]  # id(original value) -> liveout register id
    loop_id: int

    def task_for_stage(self, index: int) -> Function:
        return self.tasks[index]


def transform_loop(
    module: Module,
    spec: PipelineSpec,
    loop_id: int = 0,
    fifo_depth: int = DEFAULT_FIFO_DEPTH,
    rewrite_parent: bool = True,
) -> TransformResult:
    """Generate task functions (and optionally rewrite the parent)."""
    spec.fifo_depth = fifo_depth
    return _Transformer(module, spec, loop_id, fifo_depth).run(rewrite_parent)


def _plans_equal(a: list[StagePlan], b: list[StagePlan]) -> bool:
    if len(a) != len(b):
        return False
    for pa, pb in zip(a, b):
        if len(pa.bodies) != len(pb.bodies):
            return False
        for ba, bb in zip(pa.bodies, pb.bodies):
            if ba.materialized != bb.materialized:
                return False
            if ba.needed_branches != bb.needed_branches:
                return False
            if [id(v) for v in ba.consumed] != [id(v) for v in bb.consumed]:
                return False
    return True


class _Transformer:
    def __init__(
        self, module: Module, spec: PipelineSpec, loop_id: int, fifo_depth: int
    ) -> None:
        self.module = module
        self.spec = spec
        self.loop = spec.loop
        self.loop_id = loop_id
        self.fifo_depth = fifo_depth
        self.parent = self.loop.header.parent
        assert self.parent is not None
        self.pdg = spec.pdg
        self._loop_inst_ids = {id(i) for i in self.loop.instructions()}
        self._replicated_ids = {
            id(i) for scc in spec.replicated for i in scc.instructions
        }
        self._owner_stage: dict[int, int] = {}
        for stage in spec.stages:
            for inst in stage.owned_instructions():
                self._owner_stage[id(inst)] = stage.index
        # Control-edge sources (branch/terminator instructions) per node.
        self._ctrl_sources: dict[int, list[Instruction]] = {}
        for edge in self.pdg.edges:
            if edge.kind is DepKind.CONTROL and not edge.carried:
                self._ctrl_sources.setdefault(id(edge.dst), []).append(edge.src)
        self._exit_terminators = [
            b.terminator for b in self.loop.exiting_blocks() if b.terminator
        ]
        self._pdt = postdominator_tree(self.parent)
        from ..analysis.dominators import dominator_tree
        from ..analysis.loops import LoopInfo

        self._domtree = dominator_tree(self.parent)
        self._loopinfo = LoopInfo(self.parent, self._domtree)
        # Loop blocks in reverse postorder: cloning in this order guarantees
        # defs are visited before uses (except via back edges, which only
        # phis traverse — and phi arms are wired after the fact).
        from ..analysis.cfg import reverse_postorder

        loop_ids = {id(b) for b in self.loop.blocks}
        self.loop_rpo = [
            b for b in reverse_postorder(self.parent) if id(b) in loop_ids
        ]

    # ------------------------------------------------------------------ driver

    def run(self, rewrite_parent: bool) -> TransformResult:
        liveins = self.loop.live_ins()
        liveouts = self.loop.live_outs()
        plans = [self._plan_stage(stage) for stage in self.spec.stages]
        extras = self._materialize_orphan_liveouts(liveouts, plans)
        # Iterate: channel placements can *shrink* the skeletons (a value
        # consumed after an inner loop no longer drags the inner loop's
        # branches into the consumer), which in turn can drop channels.
        channels = ChannelPlan()
        bindings = self._plan_channels(plans, channels)
        for _ in range(5):
            placements: dict[int, dict[int, BasicBlock]] = {}
            for binding in bindings:
                if binding.placement is not None:
                    placements.setdefault(binding.consumer_stage, {})[
                        id(binding.value)
                    ] = binding.placement
            new_plans = [
                self._plan_stage(
                    stage,
                    extras.get(stage.index),
                    placements.get(stage.index, {}),
                )
                for stage in self.spec.stages
            ]
            channels = ChannelPlan()
            new_bindings = self._plan_channels(new_plans, channels)
            stable = _plans_equal(plans, new_plans) and len(new_bindings) == len(
                bindings
            )
            plans = new_plans
            bindings = new_bindings
            if stable:
                break
        liveout_ids = {id(v): i for i, v in enumerate(liveouts)}
        liveout_owner = self._liveout_owners(liveouts, plans)
        tasks = [
            self._generate_task(plan, bindings, liveins, liveouts, liveout_ids,
                                liveout_owner)
            for plan in plans
        ]
        if rewrite_parent:
            self._rewrite_parent(tasks, liveins, liveouts, liveout_ids)
        return TransformResult(
            spec=self.spec,
            parent=self.parent,
            tasks=tasks,
            channels=channels,
            bindings=bindings,
            liveins=liveins,
            liveout_ids=liveout_ids,
            loop_id=self.loop_id,
        )

    # ------------------------------------------------------------- stage plans

    def _plan_stage(
        self,
        stage: StageSpec,
        extra: set[int] | None = None,
        placements: dict[int, BasicBlock] | None = None,
    ) -> StagePlan:
        owned = {id(i) for i in stage.owned_instructions()}
        if extra:
            owned |= extra
        full = self._plan_body(owned, placements)
        bodies = [full]
        if stage.is_parallel:
            # Body 2 executes on iterations owned by *other* workers: it
            # must keep every replicated recurrence of this stage warm,
            # whether or not body 2 itself consumes the value.
            replicated_here = {
                i for i in full.materialized if i in self._replicated_ids
            }
            bodies.append(self._plan_body(replicated_here, placements))
        return StagePlan(stage, bodies)

    def _materialize_orphan_liveouts(
        self, liveouts: list[Instruction], plans: list[StagePlan]
    ) -> dict[int, set[int]]:
        """A live-out in a replicated SCC that no stage otherwise needs must
        still be computed somewhere; seed it into the last sequential stage
        (or the last stage) and re-plan it.  Returns the per-stage seeds so
        later re-planning rounds keep them."""
        extras_per_stage: dict[int, set[int]] = {}
        for value in liveouts:
            if any(id(value) in p.full.materialized for p in plans):
                continue
            if id(value) not in self._replicated_ids:
                raise TransformError(
                    f"live-out {value.short_name()} has no owning stage"
                )
            sequential = [p.stage.index for p in plans if not p.stage.is_parallel]
            target = sequential[-1] if sequential else plans[-1].stage.index
            extras_per_stage.setdefault(target, set()).add(id(value))
        for index, extra in extras_per_stage.items():
            plans[index] = self._plan_stage(self.spec.stages[index], extra)
        return extras_per_stage

    def _plan_body(
        self,
        owned: set[int],
        placements: dict[int, BasicBlock] | None = None,
    ) -> BodyPlan:
        by_id = {id(i): i for i in self.loop.instructions()}
        placements = placements or {}
        materialized = set(owned)
        needed_branches: set[int] = set()
        for term in self._exit_terminators:
            needed_branches.add(id(term))

        def branch_closure(inst: Instruction) -> bool:
            changed = False
            for src in self._ctrl_sources.get(id(inst), []):
                if isinstance(src, CondBranch) and id(src) not in needed_branches:
                    needed_branches.add(id(src))
                    changed = True
            return changed

        def block_closure(block: BasicBlock) -> bool:
            term = block.terminator
            return branch_closure(term) if term is not None else False

        changed = True
        while changed:
            changed = False
            # 1. Replicated closure: any replicated value an already-known
            #    instruction needs gets materialised locally.
            required_values: list[Value] = []
            for iid in list(materialized):
                required_values.extend(by_id[iid].operands)
            for bid in list(needed_branches):
                required_values.extend(by_id[bid].operands)
            for value in required_values:
                if (
                    isinstance(value, Instruction)
                    and id(value) in self._loop_inst_ids
                    and id(value) in self._replicated_ids
                    and id(value) not in materialized
                ):
                    scc = self.pdg.scc_of(value)
                    for inst in scc.instructions:
                        if id(inst) not in materialized:
                            materialized.add(id(inst))
                            changed = True
            # 2. Control closure: branches steering materialised work, the
            #    needed branches themselves, and the def blocks of values
            #    we will consume must all survive pruning.
            for iid in list(materialized):
                changed |= branch_closure(by_id[iid])
            for bid in list(needed_branches):
                changed |= branch_closure(by_id[bid])
            for value in required_values:
                if (
                    isinstance(value, Instruction)
                    and id(value) in self._loop_inst_ids
                    and id(value) not in materialized
                ):
                    # Consume-site alignment: the block where the value
                    # arrives (its placement if hoisted, else its def
                    # block) must survive skeleton pruning.
                    home = placements.get(id(value), value.parent)
                    if home is not None:
                        changed |= block_closure(home)
            # 3. Materialised phis: keep the branches that pick their arms.
            for iid in list(materialized):
                inst = by_id[iid]
                if isinstance(inst, Phi):
                    for _, pred in inst.incoming():
                        if not self.loop.contains_block(pred):
                            continue
                        term = pred.terminator
                        if term is not None:
                            if isinstance(term, CondBranch) and id(term) not in needed_branches:
                                needed_branches.add(id(term))
                                changed = True
                            changed |= branch_closure(term)

        consumed: list[Instruction] = []
        seen: set[int] = set()
        for block in self.loop.blocks:
            for inst in block.instructions:
                needs = id(inst) in materialized or id(inst) in needed_branches
                if not needs:
                    continue
                for op in inst.operands:
                    if (
                        isinstance(op, Instruction)
                        and id(op) in self._loop_inst_ids
                        and id(op) not in materialized
                        and id(op) not in seen
                    ):
                        seen.add(id(op))
                        consumed.append(op)
        return BodyPlan(materialized, needed_branches, consumed)

    # ---------------------------------------------------------------- channels

    def _plan_channels(
        self, plans: list[StagePlan], channels: ChannelPlan
    ) -> list[ChannelBinding]:
        bindings: list[ChannelBinding] = []
        for plan in plans:
            consumer = plan.stage
            consumed_all: list[Instruction] = []
            seen: set[int] = set()
            for body in plan.bodies:
                for value in body.consumed:
                    if id(value) not in seen:
                        seen.add(id(value))
                        consumed_all.append(value)
            body2_ids = (
                {id(v) for v in plan.bodies[1].consumed}
                if len(plan.bodies) > 1
                else set()
            )
            for value in consumed_all:
                producer_index = self._owner_stage.get(id(value))
                if producer_index is None:
                    raise TransformError(
                        f"consumed value {value.short_name()} has no owner stage"
                    )
                producer = self.spec.stages[producer_index]
                if producer_index >= consumer.index:
                    raise TransformError(
                        f"backward communication: stage {producer_index} -> "
                        f"{consumer.index} for {value.short_name()}"
                    )
                broadcast = consumer.is_parallel and id(value) in body2_ids
                placement = self._placement_block(value, plan, plans[producer_index])
                n_channels = max(producer.n_workers, consumer.n_workers)
                channel = channels.new_channel(
                    name=value.name or f"v{len(bindings)}",
                    elem_type=value.type,
                    producer_stage=producer_index,
                    consumer_stage=consumer.index,
                    n_channels=n_channels,
                    depth=self.fifo_depth,
                    broadcast=broadcast,
                )
                bindings.append(
                    ChannelBinding(
                        value=value,
                        channel=channel,
                        producer_stage=producer_index,
                        consumer_stage=consumer.index,
                        broadcast=broadcast,
                        placement=placement,
                    )
                )
        return bindings

    def _placement_block(
        self,
        value: Instruction,
        consumer_plan: StagePlan,
        producer_plan: StagePlan,
    ) -> BasicBlock:
        """Choose where the produce/consume pair for ``value`` lives.

        Candidates are the blocks on the dominator chain from the def's
        block down to the nearest common dominator of the consumer's uses;
        we pick the block at the shallowest loop depth (closest to the
        uses at that depth), so a value defined inside an inner loop but
        consumed only after it (an inner reduction) is communicated once
        per target-loop iteration instead of once per inner iteration.
        Falls back to the def site when the hoisted block's control
        conditions are not available to the producer.
        """
        def_block = value.parent
        assert def_block is not None
        uses: list[Instruction] = []
        by_id = {id(i): i for i in self.loop.instructions()}
        wanted = set()
        for body in consumer_plan.bodies:
            wanted |= body.materialized | body.needed_branches
        for iid in wanted:
            inst = by_id.get(iid)
            if inst is not None and any(op is value for op in inst.operands):
                uses.append(inst)
        if not uses:
            return def_block
        ncd: BasicBlock | None = None
        for use in uses:
            block = use.parent
            assert block is not None
            ncd = block if ncd is None else self._nearest_common_dominator(ncd, block)
        assert ncd is not None
        # Dominator chain from ncd up to def_block; pick the shallowest
        # loop depth, preferring the block closest to the uses.
        chain: list[BasicBlock] = []
        cursor: BasicBlock | None = ncd
        while cursor is not None:
            chain.append(cursor)
            if cursor is def_block:
                break
            cursor = self._domtree.idom(cursor)
        if not chain or chain[-1] is not def_block:
            return def_block
        best = min(chain, key=lambda b: (self._loop_depth(b), chain.index(b)))
        if best is def_block:
            return def_block
        # Producer legality: every branch condition controlling `best`
        # must already be computable/consumable by the producer.
        if not self._producer_can_place(best, producer_plan):
            return def_block
        return best

    def _nearest_common_dominator(self, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        ancestors: set[int] = set()
        cursor: BasicBlock | None = a
        while cursor is not None:
            ancestors.add(id(cursor))
            cursor = self._domtree.idom(cursor)
        cursor = b
        while cursor is not None:
            if id(cursor) in ancestors:
                return cursor
            cursor = self._domtree.idom(cursor)
        return self.loop.header

    def _loop_depth(self, block: BasicBlock) -> int:
        loop = self._loopinfo.loop_of_block(block)
        depth = 0
        while loop is not None:
            depth += 1
            loop = loop.parent
        return depth

    def _producer_can_place(self, block: BasicBlock, producer_plan: StagePlan) -> bool:
        """All branches steering ``block`` are already in the producer's
        skeleton (its needed-branch closure) or trivially addable with
        conditions the producer materialises/consumes."""
        body = producer_plan.full
        known = body.materialized | {id(v) for v in body.consumed}
        work = [block]
        seen: set[int] = set()
        while work:
            current = work.pop()
            term = current.terminator
            if term is None:
                continue
            for src in self._ctrl_sources.get(id(term), []):
                if not isinstance(src, CondBranch) or id(src) in seen:
                    continue
                seen.add(id(src))
                if id(src) in body.needed_branches:
                    continue
                cond = src.cond
                if isinstance(cond, Instruction) and id(cond) in self._loop_inst_ids:
                    if id(cond) not in known:
                        return False
                body.needed_branches.add(id(src))
                assert src.parent is not None
                work.append(src.parent)
        return True

    def _liveout_owners(
        self, liveouts: list[Instruction], plans: list[StagePlan]
    ) -> dict[int, int]:
        """Pick, per live-out, the stage whose task latches the register.

        Owned values are latched by their owning stage.  Replicated values
        are computed identically by every stage materialising them, so any
        one may latch; we prefer a sequential stage (deterministic single
        writer) and fall back to the parallel stage (all workers store the
        same final value).
        """
        owners: dict[int, int] = {}
        for value in liveouts:
            stage_index = self._owner_stage.get(id(value))
            if stage_index is not None:
                stage = self.spec.stages[stage_index]
                if stage.is_parallel and id(value) not in self._replicated_ids:
                    raise TransformError(
                        f"live-out {value.short_name()} owned by the parallel "
                        f"stage is not supported (no worker owns the final "
                        f"iteration statically)"
                    )
                owners[id(value)] = stage_index
                continue
            materializing = [
                plan for plan in plans if id(value) in plan.full.materialized
            ]
            sequential = [p for p in materializing if not p.stage.is_parallel]
            chosen = (sequential or materializing)
            if not chosen:
                raise TransformError(
                    f"live-out {value.short_name()} is not materialised by "
                    f"any stage"
                )
            owners[id(value)] = chosen[0].stage.index
        return owners

    # ------------------------------------------------------------------- tasks

    def _generate_task(
        self,
        plan: StagePlan,
        bindings: list[ChannelBinding],
        liveins: list[Value],
        liveouts: list[Instruction],
        liveout_ids: dict[int, int],
        liveout_owner: dict[int, int],
    ) -> Function:
        stage = plan.stage
        name = f"{self.parent.name}_loop{self.loop_id}_stage{stage.index}"
        param_types = [v.type for v in liveins]
        param_names = [f"in_{v.name or i}" for i, v in enumerate(liveins)]
        if stage.is_parallel:
            param_types.append(I32)
            param_names.append("worker_id")
        task = self.module.new_function(
            name, FunctionType(VOID, param_types), param_names
        )
        task.task_info = TaskInfo(
            loop_id=self.loop_id,
            stage_index=stage.index,
            kind=stage.kind,
            n_workers=stage.n_workers,
        )
        worker_arg = task.args[-1] if stage.is_parallel else None

        produce_map = self._produces_for_stage(stage.index, bindings)
        consume_map = {
            id(b.value): b for b in bindings if b.consumer_stage == stage.index
        }

        builder = _TaskBuilder(
            transformer=self,
            task=task,
            plan=plan,
            liveins=liveins,
            worker_arg=worker_arg,
            produce_map=produce_map,
            consume_map=consume_map,
            liveouts=[
                v for v in liveouts if liveout_owner[id(v)] == stage.index
            ],
            liveout_ids=liveout_ids,
        )
        builder.build()
        remove_unreachable_blocks(task)
        verify_function(task)
        return task

    def _produces_for_stage(
        self, stage_index: int, bindings: list[ChannelBinding]
    ) -> dict[int, list[ChannelBinding]]:
        result: dict[int, list[ChannelBinding]] = {}
        for binding in bindings:
            if binding.producer_stage == stage_index:
                result.setdefault(id(binding.value), []).append(binding)
        return result

    # ------------------------------------------------------------------ parent

    def _rewrite_parent(
        self,
        tasks: list[Function],
        liveins: list[Value],
        liveouts: list[Instruction],
        liveout_ids: dict[int, int],
    ) -> None:
        loop = self.loop
        parent = self.parent
        exit_targets = loop.exit_blocks()
        if len(exit_targets) != 1:
            raise TransformError(
                f"parent rewrite needs a single loop exit target, found "
                f"{len(exit_targets)}"
            )
        exit_target = exit_targets[0]

        invoke = parent.new_block("cgpa.invoke")
        # Retarget entry edges into the loop header.
        for pred in list(loop.header.predecessors()):
            if loop.contains_block(pred):
                continue
            pred.terminator.replace_operand(loop.header, invoke)  # type: ignore[union-attr]

        for stage, task in zip(self.spec.stages, tasks):
            if stage.is_parallel:
                for worker in range(stage.n_workers):
                    invoke.append(
                        ParallelFork(self.loop_id, task, list(liveins), worker)
                    )
            else:
                invoke.append(ParallelFork(self.loop_id, task, list(liveins), None))
        invoke.append(ParallelJoin(self.loop_id))

        retrieves: dict[int, Instruction] = {}
        for value in liveouts:
            r = RetrieveLiveout(liveout_ids[id(value)], value.type, value.name)
            invoke.append(r)
            retrieves[id(value)] = r

        # Exit-block phis: loop arms collapse into one arm from the invoke
        # block (values arrive via live-out registers).
        exiting = {id(b) for b in loop.exiting_blocks()}
        for phi in exit_target.phis():
            arm_values: list[Value] = []
            for value, pred in list(phi.incoming()):
                if id(pred) in exiting:
                    arm_values.append(value)
                    phi.remove_incoming(pred)
            if not arm_values:
                continue
            distinct = {id(v) for v in arm_values}
            if len(distinct) != 1:
                raise TransformError(
                    "exit phi merges different values from different exits"
                )
            original = arm_values[0]
            replacement = retrieves.get(id(original), original)
            if isinstance(original, Instruction) and loop.contains(original):
                if id(original) not in retrieves:
                    raise TransformError(
                        f"exit phi uses non-live-out loop value "
                        f"{original.short_name()}"
                    )
            phi.add_incoming(replacement, invoke)
        invoke.append(Jump(exit_target))

        # Replace remaining outside uses of live-outs.
        loop_ids = self._loop_inst_ids
        for value in liveouts:
            replacement = retrieves[id(value)]
            for user in value.users:
                if id(user) in loop_ids or user.parent is invoke:
                    continue
                user.replace_operand(value, replacement)

        # Delete the original loop body from the parent.
        for block in loop.blocks:
            for inst in block.instructions:
                inst.drop_operands()
        loop_block_ids = {id(b) for b in loop.blocks}
        for block in loop.blocks:
            for inst in list(block.instructions):
                stray = [
                    u for u in inst.users
                    if u.parent is not None and id(u.parent) not in loop_block_ids
                ]
                if stray:
                    raise TransformError(
                        f"deleted loop value {inst.short_name()} still used "
                        f"outside the loop"
                    )
                for user in list(inst.users):
                    user.drop_operands()
                block.remove(inst)
            parent.remove_block(block)
        remove_unreachable_blocks(parent)
        verify_function(parent)


class _TaskBuilder:
    """Builds one task function from a stage plan (one or two loop bodies)."""

    def __init__(
        self,
        transformer: _Transformer,
        task: Function,
        plan: StagePlan,
        liveins: list[Value],
        worker_arg: Argument | None,
        produce_map: dict[int, list[ChannelBinding]],
        consume_map: dict[int, ChannelBinding],
        liveouts: list[Instruction],
        liveout_ids: dict[int, int],
    ) -> None:
        self.t = transformer
        self.task = task
        self.plan = plan
        self.liveins = liveins
        self.worker_arg = worker_arg
        self.produce_map = produce_map
        self.consume_map = consume_map
        self.liveouts = liveouts
        self.liveout_ids = liveout_ids
        self.loop = transformer.loop
        self.dual = len(plan.bodies) > 1
        # Shared across bodies.
        self.livein_map: dict[int, Value] = {}
        self.dispatch: BasicBlock | None = None
        self.exit_block: BasicBlock | None = None
        self.header_phi_clones: dict[int, Phi] = {}
        self.it_phi: Phi | None = None
        self.it_next: Instruction | None = None

    # -- top-level ---------------------------------------------------------------

    def build(self) -> None:
        task = self.task
        loop = self.loop
        for livein, arg in zip(self.liveins, task.args):
            self.livein_map[id(livein)] = arg

        entry = task.new_block("entry")
        self.dispatch = task.new_block("dispatch")
        self.exit_block = task.new_block("task.exit")
        entry.append(Jump(self.dispatch))

        # Merged header phis: any original header phi materialised by any
        # body becomes a single phi in the dispatch block.
        materialized_union: set[int] = set()
        for body in self.plan.bodies:
            materialized_union |= body.materialized
        for phi in loop.header_phis():
            if id(phi) in materialized_union:
                clone = Phi(phi.type, phi.name)
                self.dispatch.append(clone)
                self.header_phi_clones[id(phi)] = clone

        # Iteration counter (the "red" compiler-generated code of Fig 1(e)).
        self.it_phi = Phi(I32, "it")
        self.dispatch.append(self.it_phi)
        self.it_next = BinaryOp("add", self.it_phi, Constant(I32, 1), "it.next")
        self.dispatch.append(self.it_next)

        bodies = [
            _BodyClone(self, body, index) for index, body in enumerate(self.plan.bodies)
        ]
        for clone in bodies:
            clone.create_blocks()

        if self.dual:
            n = self.plan.stage.n_workers
            if n & (n - 1) == 0:
                # Power-of-two worker count: the paper's `it & MASK` form.
                mod = BinaryOp("and", self.it_phi, Constant(I32, n - 1), "it.mod")
            else:
                mod = BinaryOp("srem", self.it_phi, Constant(I32, n), "it.mod")
            self.dispatch.append(mod)
            mine = ICmp("eq", mod, self.worker_arg, "mine")
            self.dispatch.append(mine)
            self.dispatch.append(
                CondBranch(mine, bodies[0].header_rest, bodies[1].header_rest)
            )
        else:
            self.dispatch.append(Jump(bodies[0].header_rest))

        for clone in bodies:
            clone.fill_blocks()

        # Wire phi arms: initial values from entry, latch values per body.
        preheader_values = self._preheader_values()
        for phi_id, clone_phi in self.header_phi_clones.items():
            init = preheader_values[phi_id]
            clone_phi.add_incoming(self._map_external(init), entry)
        self.it_phi.add_incoming(Constant(I32, 0), entry)
        for body_clone in bodies:
            for orig_latch in self.loop.latches():
                latch_block = body_clone.block_map.get(id(orig_latch))
                if latch_block is None:
                    continue
                for phi_id, clone_phi in self.header_phi_clones.items():
                    orig_phi = body_clone.by_id[phi_id]
                    orig_value = orig_phi.incoming_for(orig_latch)
                    clone_phi.add_incoming(
                        body_clone.map_value(orig_value), latch_block
                    )
                self.it_phi.add_incoming(self.it_next, latch_block)

        # Exit block: latch live-outs, return.
        for value in self.liveouts:
            mapped = bodies[0].value_map.get(id(value))
            if mapped is None:
                raise TransformError(
                    f"live-out {value.short_name()} not materialised in its "
                    f"owning stage"
                )
            self.exit_block.append(StoreLiveout(self.liveout_ids[id(value)], mapped))
        self.exit_block.append(Ret())

    def _preheader_values(self) -> dict[int, Value]:
        result: dict[int, Value] = {}
        for phi in self.loop.header_phis():
            if id(phi) not in self.header_phi_clones:
                continue
            for value, pred in phi.incoming():
                if not self.loop.contains_block(pred):
                    result[id(phi)] = value
        missing = set(self.header_phi_clones) - set(result)
        if missing:
            raise TransformError("header phi without a preheader arm")
        return result

    def _map_external(self, value: Value) -> Value:
        """Map a loop-external value (live-in / constant / global)."""
        if isinstance(value, (Constant, GlobalVariable)):
            return value
        mapped = self.livein_map.get(id(value))
        if mapped is None:
            raise TransformError(
                f"external value {value.short_name()} is not a live-in"
            )
        return mapped


class _BodyClone:
    """One control-equivalent clone of the loop for a body plan."""

    def __init__(self, builder: _TaskBuilder, plan: BodyPlan, index: int) -> None:
        self.b = builder
        self.plan = plan
        self.index = index
        self.loop = builder.loop
        self.by_id = {id(i): i for i in self.loop.instructions()}
        self.block_map: dict[int, BasicBlock] = {}
        self.value_map: dict[int, Value] = {}
        self.header_rest: BasicBlock | None = None
        self._suffix = f".b{index}" if builder.dual else ""
        self._nonphi_phis: list[tuple[Phi, Phi]] = []  # (orig, clone)
        # Placement maps: block id -> values consumed / produced there.
        self._consume_at: dict[int, list[Instruction]] = {}
        for v in plan.consumed:
            binding = builder.consume_map[id(v)]
            home = binding.placement or v.parent
            self._consume_at.setdefault(id(home), []).append(v)
        # Produces placed away from the def site (hoisted); def-site
        # produces are emitted right after the cloned definition.
        self._produce_at: dict[int, list] = {}
        self._defsite_produce: dict[int, list] = {}
        for vid, bindings in builder.produce_map.items():
            for binding in bindings:
                home = binding.placement or binding.value.parent
                if home is binding.value.parent:
                    self._defsite_produce.setdefault(vid, []).append(binding)
                else:
                    self._produce_at.setdefault(id(home), []).append(binding)

    # -- structure ------------------------------------------------------------

    def create_blocks(self) -> None:
        task = self.b.task
        for block in self.loop.blocks:
            clone = task.new_block(block.short_name() + self._suffix)
            self.block_map[id(block)] = clone
        self.header_rest = self.block_map[id(self.loop.header)]
        # Header phis live in the shared dispatch block.
        for phi_id, clone_phi in self.b.header_phi_clones.items():
            self.value_map[phi_id] = clone_phi

    # -- value mapping -----------------------------------------------------------

    def map_value(self, value: Value) -> Value:
        if isinstance(value, (Constant, GlobalVariable)):
            return value
        if isinstance(value, Instruction) and id(value) in self.value_map:
            return self.value_map[id(value)]
        if isinstance(value, Instruction) and id(value) in self.b.t._loop_inst_ids:
            raise TransformError(
                f"loop value {value.short_name()} used but neither "
                f"materialised nor consumed in stage body {self.index}"
            )
        return self.b._map_external(value)

    def _target(self, block: BasicBlock) -> BasicBlock:
        """Branch-target mapping: back edges go to dispatch, exits to the
        task's exit block."""
        if block is self.loop.header:
            return self.b.dispatch  # type: ignore[return-value]
        if not self.loop.contains_block(block):
            return self.b.exit_block  # type: ignore[return-value]
        return self.block_map[id(block)]

    # -- body generation ------------------------------------------------------------

    def fill_blocks(self) -> None:
        for block in self.b.t.loop_rpo:
            self._fill_block(block)
        self._fix_local_phis()

    def _fill_block(self, block: BasicBlock) -> None:
        clone = self.block_map[id(block)]
        is_header = block is self.loop.header
        consumed = self._consumed_ids()
        # Consumes whose placement is this block go first (after phis).
        for value in self._consume_at.get(id(block), []):
            if id(value) in consumed:
                self._emit_consume(value, clone)
        # Hoisted produces assigned to this block (values defined earlier).
        for binding in self._produce_at.get(id(block), []):
            if id(binding.value) in self.plan.materialized:
                self._emit_binding_produce(binding, clone)
        for inst in block.instructions:
            if isinstance(inst, Phi):
                if id(inst) in consumed:
                    continue  # consume already placed above
                if is_header:
                    # Materialised header phis live in the shared dispatch
                    # block; def-site produces go at the top of the header
                    # clone, i.e. once per iteration.
                    if id(inst) in self.plan.materialized:
                        self._emit_produces(inst, self.value_map[id(inst)], clone)
                    continue
                if id(inst) in self.plan.materialized:
                    phi_clone = Phi(inst.type, inst.name)
                    clone.insert(clone.first_non_phi_index(), phi_clone)
                    self.value_map[id(inst)] = phi_clone
                    self._nonphi_phis.append((inst, phi_clone))
                    self._emit_produces(inst, phi_clone, clone)
                continue
            if inst.is_terminator:
                self._clone_terminator(inst, clone)
                continue
            if id(inst) in consumed:
                continue  # consume already placed at its placement block
            if id(inst) not in self.plan.materialized:
                continue
            cloned = inst.clone(self._combined_map())
            clone.append(cloned)
            self.value_map[id(inst)] = cloned
            self._emit_produces(inst, cloned, clone)

    def _consumed_ids(self) -> set[int]:
        return {id(v) for v in self.plan.consumed}

    def _combined_map(self) -> dict[Value, Value]:
        # Instruction.clone wants a Value->Value map.
        mapping: dict[Value, Value] = {}
        for vid, new in self.value_map.items():
            orig = self.by_id.get(vid)
            if orig is not None:
                mapping[orig] = new
        for livein in self.b.liveins:
            mapping[livein] = self.b.livein_map[id(livein)]
        return mapping

    def _emit_consume(self, inst: Instruction, clone: BasicBlock) -> None:
        if id(inst) in self.value_map:
            return
        binding = self.b.consume_map.get(id(inst))
        if binding is None:
            raise TransformError(
                f"no channel for consumed value {inst.short_name()}"
            )
        selector = self._consume_selector(binding)
        consume = Consume(binding.channel, inst.type, selector, inst.name)
        clone.append(consume)
        self.value_map[id(inst)] = consume

    def _consume_selector(self, binding: ChannelBinding) -> Value | None:
        consumer = self.b.plan.stage
        producer = self.b.t.spec.stages[binding.producer_stage]
        if consumer.is_parallel:
            return None  # pop own channel (worker id)
        if producer.is_parallel:
            return self.b.it_phi  # round-robin across producer workers
        return None

    def _emit_produces(
        self, inst: Instruction, cloned: Value, clone: BasicBlock
    ) -> None:
        for binding in self._defsite_produce.get(id(inst), []):
            if binding.broadcast:
                clone.append(ProduceBroadcast(binding.channel, cloned))
            else:
                clone.append(
                    Produce(binding.channel, self._produce_selector(binding), cloned)
                )

    def _emit_binding_produce(self, binding: ChannelBinding, clone: BasicBlock) -> None:
        cloned = self.value_map.get(id(binding.value))
        if cloned is None:
            raise TransformError(
                f"hoisted produce of {binding.value.short_name()} before its "
                f"definition was cloned"
            )
        if binding.broadcast:
            clone.append(ProduceBroadcast(binding.channel, cloned))
        else:
            clone.append(
                Produce(binding.channel, self._produce_selector(binding), cloned)
            )

    def _produce_selector(self, binding: ChannelBinding) -> Value:
        producer = self.b.plan.stage
        consumer = self.b.t.spec.stages[binding.consumer_stage]
        if producer.is_parallel:
            return self.b.worker_arg  # type: ignore[return-value]
        if consumer.is_parallel:
            return self.b.it_phi  # type: ignore[return-value]
        return Constant(I32, 0)

    def _clone_terminator(self, inst: Instruction, clone: BasicBlock) -> None:
        if isinstance(inst, Jump):
            clone.append(Jump(self._target(inst.target)))
            return
        if isinstance(inst, CondBranch):
            if id(inst) in self.plan.needed_branches:
                cond = self.map_value(inst.cond)
                clone.append(
                    CondBranch(cond, self._target(inst.if_true), self._target(inst.if_false))
                )
            else:
                # Irrelevant control region: short-circuit to the branch's
                # immediate post-dominator.
                ipdom = self.b.t._pdt.idom(inst.parent)
                if ipdom is None or ipdom is self.b.t._pdt.virtual_exit:
                    raise TransformError("cannot prune branch without post-dominator")
                clone.append(Jump(self._target(ipdom)))
            return
        raise TransformError(f"unsupported loop terminator {inst.opcode}")

    def _fix_local_phis(self) -> None:
        for orig, phi_clone in self._nonphi_phis:
            for value, pred in orig.incoming():
                pred_clone = self.block_map.get(id(pred))
                if pred_clone is None:
                    continue
                phi_clone.add_incoming(self.map_value(value), pred_clone)
