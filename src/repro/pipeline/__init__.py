"""Pipeline partitioning and transformation (the CGPA core)."""

from .cosim import FunctionalForkHandler, run_transformed
from .driver import CompiledPipeline, cgpa_compile, cgpa_compile_all
from .partition import partition_loop
from .spec import (
    DEFAULT_PARALLEL_WORKERS,
    PipelineSpec,
    ReplicationPolicy,
    StageKind,
    StageSpec,
)
from .transform import (
    ChannelBinding,
    TaskInfo,
    TransformResult,
    transform_loop,
)

__all__ = [
    "partition_loop", "transform_loop", "cgpa_compile", "cgpa_compile_all",
    "CompiledPipeline", "TransformResult", "TaskInfo", "ChannelBinding",
    "FunctionalForkHandler", "run_transformed",
    "PipelineSpec", "StageSpec", "StageKind", "ReplicationPolicy",
    "DEFAULT_PARALLEL_WORKERS",
]
