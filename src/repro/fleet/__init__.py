"""One shared, *supervised* process-pool executor for every parallel fan-out.

Before this package each parallel consumer owned its own machinery:
:mod:`repro.dse.explore` created a fresh ``multiprocessing.Pool`` per
evaluation batch (paying process startup for every strategy round),
fault sweeps ran strictly serially, and the service job queue only knew
about threads.  :class:`FleetExecutor` is the one reusable executor they
all share:

* **ordered map** — ``map(fn, tasks)`` always returns results in task
  order, so every consumer's determinism contract (byte-identical
  reports at any pool size) holds by construction;
* **serial == pool** — at ``processes=1`` the *same* task function runs
  inline in the parent, so the serial path and the pool path execute
  identical code and produce identical bytes;
* **reusable** — the underlying ``ProcessPoolExecutor`` is created
  lazily and kept across ``map`` calls, so per-process caches (compiled
  pipelines, interned workload images) amortize across batches, sweep
  rounds and queue jobs;
* **supervised** — a pooled ``map`` watches its tasks: a worker crash
  (``BrokenProcessPool``) or a task that blows its wall-clock deadline
  tears the pool down, respawns it, and re-runs every unfinished task
  under a bounded :class:`RetryPolicy` (exponential backoff with
  deterministic jitter).  Only infrastructure failures are retried —
  ordinary task exceptions propagate unchanged on the first attempt, so
  results stay byte-identical to an unsupervised run.  Exhausted retries
  surface as typed :class:`TaskCrashed` / :class:`TaskTimeout` errors;
* **incremental results** — ``map(..., on_result=fn)`` reports each
  task's result (with its proposal index) the moment it completes: the
  hook checkpoint/resumable sweeps persist partial progress through;
* **futures bridge** — :attr:`futures_pool` exposes the pool as a
  ``concurrent.futures.Executor`` for ``loop.run_in_executor`` (the
  service job queue's integration point), and :meth:`respawn` replaces
  a broken pool with a fresh one.

Every supervision action is recorded as a :class:`FleetEvent` on
:attr:`FleetExecutor.events` and — when an
:class:`~repro.obs.emit.EnvelopeWriter` is attached — journaled as a
``fleet`` :class:`~repro.obs.RunEnvelope`, so ``obs query --kind fleet``
reports crash/retry/timeout/respawn history alongside the runs.

Task functions must be module-level (picklable) and should memoize their
heavy state in module globals keyed by task parameters — each pool
process then compiles a kernel once, no matter how many tasks land on
it.  :func:`interned_workload` is the shared half of that pattern: it
runs a kernel's functional setup once per ``(module, kernel)`` per
process and stamps out :meth:`~repro.interp.memory.Memory.clone`\\ s,
so simulations pay for a memory image copy instead of re-interpreting
the setup function.

:mod:`repro.fleet.chaos` supplies the deterministic failure-injection
hooks (worker kills, task delays, artifact corruption) the chaos tests
and the ``chaos-smoke`` CI job drive through ``CGPA_CHAOS``.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    Future,
    ProcessPoolExecutor,
    wait as futures_wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from ..errors import CgpaError
from ..harness.runner import setup_workload

if TYPE_CHECKING:  # pragma: no cover
    from ..interp.memory import Memory
    from ..kernels import KernelSpec

#: Interned post-setup workload images, per process:
#: ``(id(module), kernel, setup_args) -> (module, memory, globals,
#: args)``.  The module object is kept in the value so its id stays
#: valid for the memo's lifetime; setup_args is in the key because two
#: specs may share a module but build different-scale workloads.
_WORKLOAD_MEMO: dict = {}

#: Entries kept before the workload memo is dropped wholesale (each
#: pristine image is a full memory copy, so the cap bounds resident
#: bytes, not correctness).
_WORKLOAD_MEMO_ENTRIES = 32


class TaskCrashed(CgpaError):
    """A pool worker died under a task and the retry budget is spent.

    Raised in the *parent*: the pool broke (``BrokenProcessPool`` — a
    worker was killed, segfaulted, or ``os._exit``\\ ed) more times than
    :attr:`RetryPolicy.max_retries` allows for ``task_index``.
    """

    def __init__(self, message: str, task_index: int | None = None,
                 attempts: int = 0):
        super().__init__(message)
        self.task_index = task_index
        self.attempts = attempts


class TaskTimeout(CgpaError):
    """A task exceeded its wall-clock deadline on every allowed attempt."""

    def __init__(self, message: str, task_index: int | None = None,
                 attempts: int = 0, deadline_s: float | None = None):
        super().__init__(message)
        self.task_index = task_index
        self.attempts = attempts
        self.deadline_s = deadline_s


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    Retries apply only to *infrastructure* failures (worker crashes,
    deadline timeouts) — a task exception is a deterministic result and
    retrying it would just replay it.  The jitter fraction is a pure
    function of ``(seed, task_index, attempt)``, so a re-run of the same
    sweep backs off identically: supervision never introduces
    nondeterminism into anything observable.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def delay_s(self, task_index: int, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based) of a task."""
        exponent = max(0, attempt - 1)
        base = min(
            self.backoff_base_s * self.backoff_factor ** exponent,
            self.backoff_max_s,
        )
        digest = hashlib.sha256(
            f"{self.seed}:{task_index}:{attempt}".encode()
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return base * (1.0 + self.jitter * fraction)


@dataclass
class FleetEvent:
    """One supervision event (also journaled as a ``fleet`` envelope)."""

    kind: str  # task-crashed | task-timeout | retry | pool-respawn | resume
    task_index: int | None = None
    attempt: int = 0
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "task_index": self.task_index,
            "attempt": self.attempt,
            "detail": self.detail,
        }


def interned_workload(module, spec: "KernelSpec"):
    """``setup_workload`` through a per-process image cache.

    Returns ``(memory, globals, args)`` exactly like
    :func:`repro.harness.runner.setup_workload`, but the functional
    setup runs only once per ``(module, kernel)`` in this process; every
    call gets a fresh :meth:`~repro.interp.memory.Memory.clone` of the
    pristine image (bit-identical to a fresh setup, including the
    allocator break and access counters).
    """
    key = (id(module), spec.name, tuple(spec.setup_args))
    entry = _WORKLOAD_MEMO.get(key)
    if entry is None:
        if len(_WORKLOAD_MEMO) >= _WORKLOAD_MEMO_ENTRIES:
            _WORKLOAD_MEMO.clear()
        memory, globals_, args = setup_workload(module, spec)
        entry = _WORKLOAD_MEMO[key] = (module, memory, globals_, args)
    _, memory, globals_, args = entry
    return memory.clone(), dict(globals_), list(args)


def _supervised_call(fn: Callable, index: int, task):
    """Worker-side wrapper: fire chaos hooks for ``index``, then run.

    A strict no-op unless ``CGPA_CHAOS`` names a chaos plan (see
    :mod:`repro.fleet.chaos`), so the supervised pool path runs exactly
    the task function the serial path runs.
    """
    from . import chaos

    chaos.fire_task_hooks(index)
    return fn(task)


class FleetExecutor:
    """A reusable, order-preserving, supervised process-pool executor.

    ``processes=1`` (the default) never spawns anything: tasks run
    inline, in submission order, through the same task functions the
    pool would use.  ``processes>1`` lazily creates one
    ``ProcessPoolExecutor``, supervises every ``map`` against crashes
    and deadlines, and reuses the pool for every subsequent ``map``
    until :meth:`close`.

    ``envelopes`` is an optional :class:`~repro.obs.emit.EnvelopeWriter`:
    when set, every supervision event is journaled as a ``fleet``
    envelope (written in the parent, so determinism is untouched);
    ``context`` rides along in each event envelope's ``extra`` (e.g.
    ``{"subsystem": "dse", "kernel": "ks"}``).
    """

    def __init__(
        self,
        processes: int = 1,
        retry: RetryPolicy | None = None,
        deadline_s: float | None = None,
        envelopes=None,
        context: dict | None = None,
    ) -> None:
        self.processes = max(1, int(processes))
        self.retry = retry if retry is not None else RetryPolicy()
        self.deadline_s = deadline_s
        self.envelopes = envelopes
        self.context = dict(context or {})
        self.events: list[FleetEvent] = []
        self.respawns = 0
        self._pool: ProcessPoolExecutor | None = None

    @property
    def serial(self) -> bool:
        return self.processes == 1

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.processes)
        return self._pool

    @property
    def futures_pool(self) -> Executor:
        """The underlying ``concurrent.futures`` executor (created on
        first use), for APIs that take an Executor — e.g.
        ``loop.run_in_executor`` in the service job queue."""
        return self._ensure_pool()

    def record_event(
        self,
        kind: str,
        task_index: int | None = None,
        attempt: int = 0,
        detail: str = "",
    ) -> FleetEvent:
        """Append one supervision event (and journal it, when wired)."""
        event = FleetEvent(
            kind=kind, task_index=task_index, attempt=attempt, detail=detail
        )
        self.events.append(event)
        if self.envelopes is not None:
            from ..obs.emit import fleet_envelope

            self.envelopes.write(
                fleet_envelope(event.to_dict(), extra=self.context)
            )
        return event

    def map(
        self,
        fn: Callable,
        tasks: Iterable,
        deadline_s: float | None = None,
        retry: RetryPolicy | None = None,
        on_result: Callable[[int, object], None] | None = None,
    ) -> list:
        """Apply ``fn`` to every task; results in task order.

        A single task (or a serial executor) runs inline — identical
        code path, identical bytes, no process round-trip.  Pooled runs
        are supervised: ``deadline_s`` bounds each task's wall clock,
        ``retry`` (default :attr:`retry`) bounds crash/timeout recovery,
        and ``on_result(index, result)`` fires in the parent as each
        task completes (in completion order; the returned list is always
        proposal-ordered).
        """
        tasks = list(tasks)
        deadline_s = self.deadline_s if deadline_s is None else deadline_s
        if self.serial or (len(tasks) <= 1 and deadline_s is None):
            results = []
            for index, task in enumerate(tasks):
                result = fn(task)
                if on_result is not None:
                    on_result(index, result)
                results.append(result)
            return results
        return self._supervised_map(
            fn, tasks, deadline_s, retry if retry is not None else self.retry,
            on_result,
        )

    # -- supervision -------------------------------------------------------

    def _supervised_map(
        self,
        fn: Callable,
        tasks: list,
        deadline_s: float | None,
        retry: RetryPolicy,
        on_result: Callable[[int, object], None] | None,
    ) -> list:
        unset = object()
        slots: list = [unset] * len(tasks)
        attempts = [0] * len(tasks)

        while True:
            unfinished = [i for i, slot in enumerate(slots) if slot is unset]
            if not unfinished:
                break
            pool = self._ensure_pool()
            pending: dict[Future, int] = {}
            deadline_at: dict[int, float] = {}
            for index in unfinished:
                future = pool.submit(_supervised_call, fn, index, tasks[index])
                pending[future] = index
                if deadline_s is not None:
                    deadline_at[index] = time.monotonic() + deadline_s

            broken: str | None = None
            timed_out: list[int] = []
            while pending and broken is None and not timed_out:
                timeout = None
                if deadline_s is not None:
                    timeout = max(
                        0.0,
                        min(deadline_at[i] for i in pending.values())
                        - time.monotonic(),
                    )
                done, _ = futures_wait(
                    set(pending), timeout=timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    now = time.monotonic()
                    timed_out = sorted(
                        i for i in pending.values() if deadline_at[i] <= now
                    )
                    continue
                for future in done:
                    index = pending.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool as exc:
                        # Every other in-flight future is broken too;
                        # abandon them all and respawn below.
                        broken = str(exc) or type(exc).__name__
                        break
                    slots[index] = result
                    if on_result is not None:
                        on_result(index, result)

            if broken is None and not timed_out:
                continue  # round drained cleanly

            # Infrastructure failure: charge an attempt to the affected
            # tasks, enforce the retry budget, then tear the pool down
            # (a wedged or dead worker is unrecoverable in place) and
            # respawn for the next round.
            if timed_out:
                affected = timed_out
                for index in affected:
                    attempts[index] += 1
                    self.record_event(
                        "task-timeout", task_index=index,
                        attempt=attempts[index],
                        detail=f"exceeded {deadline_s:g}s deadline",
                    )
                    if attempts[index] > retry.max_retries:
                        self._terminate_pool()
                        raise TaskTimeout(
                            f"task {index} exceeded its {deadline_s:g}s "
                            f"deadline on all {attempts[index]} attempt(s)",
                            task_index=index, attempts=attempts[index],
                            deadline_s=deadline_s,
                        )
            else:
                # The pool cannot say which task killed the worker, so
                # the round charges every unfinished task one attempt; a
                # persistent crasher still exhausts its budget within
                # max_retries+1 rounds.
                affected = [i for i, slot in enumerate(slots) if slot is unset]
                for index in affected:
                    attempts[index] += 1
                self.record_event(
                    "task-crashed",
                    task_index=affected[0] if affected else None,
                    attempt=max(attempts[i] for i in affected),
                    detail=f"pool broke under task(s) {affected}: {broken}",
                )
                for index in affected:
                    if attempts[index] > retry.max_retries:
                        self._terminate_pool()
                        raise TaskCrashed(
                            f"pool worker crashed under task {index} on all "
                            f"{attempts[index]} attempt(s): {broken}",
                            task_index=index, attempts=attempts[index],
                        )

            self._terminate_pool()
            self.respawns += 1
            self.record_event(
                "pool-respawn", attempt=self.respawns,
                detail=f"respawning {self.processes}-process pool",
            )
            retried = [i for i, slot in enumerate(slots) if slot is unset]
            if retried:
                self.record_event(
                    "retry",
                    task_index=retried[0],
                    attempt=max(attempts[i] for i in affected),
                    detail=f"re-running {len(retried)} task(s): {retried}",
                )
                time.sleep(max(
                    retry.delay_s(i, attempts[i]) for i in affected
                ))

        return slots

    def respawn(self) -> Executor:
        """Replace the pool with a fresh one; returns the new executor.

        The service job queue calls this after a ``BrokenProcessPool``
        so retried jobs land on live workers.
        """
        self._terminate_pool()
        self.respawns += 1
        self.record_event(
            "pool-respawn", attempt=self.respawns,
            detail=f"respawning {self.processes}-process pool",
        )
        return self._ensure_pool()

    def _terminate_pool(self) -> None:
        """Hard-stop the pool: kill workers, drop the executor.

        Used when a worker is wedged past its deadline or the pool is
        already broken — ``shutdown(wait=True)`` alone would block on a
        task that will never finish.
        """
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.terminate()
            except Exception:  # already dead
                pass
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:  # a broken pool may refuse a clean shutdown
            pass

    def close(self) -> None:
        """Shut the pool down (idempotent; the executor stays usable —
        the next ``map`` recreates the pool)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "FleetExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
