"""Deterministic failure injection for the host system.

PR 4 injects faults into the *simulated* hardware; this module injects
faults into the *host* — killed pool workers, tasks delayed past their
deadline, corrupted store artifacts — so the supervision layer in
:class:`repro.fleet.FleetExecutor`, the store's read-side integrity
check, and the resumable sweeps can be exercised deterministically in
tests and the ``chaos-smoke`` CI job.

A chaos *plan* is a JSON file naming the events to fire::

    {"parent_pid": 1234,
     "marker_dir": "/tmp/chaos-markers",
     "events": [
       {"kind": "kill-worker", "task_index": 3},
       {"kind": "delay", "task_index": 1, "seconds": 0.5},
       {"kind": "corrupt-artifact", "task_index": 0,
        "root": "/path/to/store", "mode": "truncate"}]}

Pointing the ``CGPA_CHAOS`` environment variable at a plan arms it:
every supervised fleet task calls :func:`fire_task_hooks` (via
``_supervised_call``) before running, and any event matching its task
index fires **exactly once** across the whole process tree — each event
is claimed through an ``O_EXCL`` marker file in ``marker_dir``, so a
respawned pool re-running the same task index does not re-fire the
event (which is precisely what lets a killed task succeed on retry).

Event kinds:

* ``kill-worker`` — ``os._exit(17)`` the pool worker mid-task (skipped
  in the parent process, so serial runs are never killed): the parent
  observes ``BrokenProcessPool`` and must respawn + retry;
* ``delay`` — sleep ``seconds`` before running the task: pushes a task
  past its wall-clock deadline to exercise :class:`~repro.fleet.TaskTimeout`;
* ``corrupt-artifact`` — truncate or garbage a stored artifact under
  ``root`` (optionally selected by ``key`` prefix / ``match``
  substring): exercises the store's hash check + quarantine path.

The module is also a CLI for CI scripting::

    python -m repro.fleet.chaos corrupt STORE_ROOT [--key PREFIX]
        [--match SUBSTRING] [--mode truncate|garbage]
    python -m repro.fleet.chaos plan PLAN.json --marker-dir DIR
        --event kill-worker:2 [--event delay:1:0.5] ...

Without ``CGPA_CHAOS`` set, every hook is a strict no-op.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

#: Environment variable naming the active chaos plan file.
ENV_VAR = "CGPA_CHAOS"

#: Exit status used by ``kill-worker`` (distinctive in pool tracebacks).
KILL_EXIT_STATUS = 17

#: Cached ``(path, plan_dict)`` so each worker parses the plan once.
_PLAN_CACHE: tuple[str, dict] | None = None


def write_plan(path, events: list[dict], marker_dir=None) -> dict:
    """Write a chaos plan to ``path`` and return it.

    Records the calling process as ``parent_pid`` so ``kill-worker``
    events only ever fire in pool workers, never in the parent driving
    the sweep.  ``marker_dir`` (default: ``<path>.markers`` next to the
    plan) is created and used for once-only event claims.
    """
    path = os.fspath(path)
    if marker_dir is None:
        marker_dir = path + ".markers"
    marker_dir = os.fspath(marker_dir)
    os.makedirs(marker_dir, exist_ok=True)
    plan = {
        "parent_pid": os.getpid(),
        "marker_dir": marker_dir,
        "events": list(events),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(plan, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return plan


def _load_plan() -> dict | None:
    global _PLAN_CACHE
    path = os.environ.get(ENV_VAR)
    if not path:
        return None
    if _PLAN_CACHE is not None and _PLAN_CACHE[0] == path:
        return _PLAN_CACHE[1]
    try:
        with open(path, encoding="utf-8") as handle:
            plan = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    _PLAN_CACHE = (path, plan)
    return plan


def _claim(marker_dir: str, event_id: int) -> bool:
    """Claim event ``event_id`` exactly once across all processes."""
    marker = os.path.join(marker_dir, f"ev{event_id}")
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        return False
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        handle.write(f"{os.getpid()}\n")
    return True


def fire_task_hooks(task_index: int) -> None:
    """Fire any armed chaos events matching ``task_index``.

    Called by the fleet's worker-side wrapper before every supervised
    task.  No-op unless ``CGPA_CHAOS`` names a readable plan.
    """
    plan = _load_plan()
    if plan is None:
        return
    marker_dir = plan.get("marker_dir", "")
    parent_pid = plan.get("parent_pid")
    for event_id, event in enumerate(plan.get("events", [])):
        if event.get("task_index") != task_index:
            continue
        if not marker_dir or not _claim(marker_dir, event_id):
            continue
        kind = event.get("kind")
        if kind == "kill-worker":
            # Never kill the parent: a serial run (or the inline path)
            # executes tasks in the sweep driver itself.
            if parent_pid is not None and os.getpid() != parent_pid:
                os._exit(KILL_EXIT_STATUS)
        elif kind == "delay":
            time.sleep(float(event.get("seconds", 0.0)))
        elif kind == "corrupt-artifact":
            corrupt_artifact(
                event.get("root", ""),
                key=event.get("key"),
                mode=event.get("mode", "truncate"),
                match=event.get("match"),
            )


def corrupt_artifact(root, key=None, mode="truncate", match=None):
    """Corrupt one artifact under store ``root``; returns its key.

    Picks the first artifact in sorted-key order, optionally narrowed to
    keys starting with ``key`` and/or payloads containing ``match``.
    ``mode="truncate"`` halves the file; ``mode="garbage"`` overwrites
    it with non-JSON bytes.  Returns ``None`` when nothing matched.
    """
    root = os.fspath(root)
    candidates = []
    if os.path.isdir(root):
        for shard in sorted(os.listdir(root)):
            shard_dir = os.path.join(root, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json") and not name.startswith("."):
                    candidates.append(
                        (name[: -len(".json")], os.path.join(shard_dir, name))
                    )
    for artifact_key, path in sorted(candidates):
        if key is not None and not artifact_key.startswith(key):
            continue
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            continue
        if match is not None and match not in text:
            continue
        if mode == "garbage":
            payload = b"{garbage\x00\xff"
        else:
            payload = text.encode("utf-8")[: max(1, len(text) // 2)]
        with open(path, "wb") as handle:
            handle.write(payload)
        return artifact_key
    return None


def _parse_event(text: str) -> dict:
    """``kind:task_index[:arg]`` → event dict (CLI shorthand)."""
    parts = text.split(":")
    if len(parts) < 2:
        raise ValueError(f"bad --event {text!r}: want kind:task_index[:arg]")
    kind, task_index = parts[0], int(parts[1])
    event: dict = {"kind": kind, "task_index": task_index}
    if kind == "delay":
        event["seconds"] = float(parts[2]) if len(parts) > 2 else 0.1
    elif kind == "corrupt-artifact":
        if len(parts) > 2:
            event["root"] = ":".join(parts[2:])
    elif kind != "kill-worker":
        raise ValueError(f"unknown chaos event kind {kind!r}")
    return event


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet.chaos",
        description="Deterministic host-fault injection helpers.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    corrupt = commands.add_parser(
        "corrupt", help="truncate or garbage one store artifact"
    )
    corrupt.add_argument("root", help="artifact store root directory")
    corrupt.add_argument("--key", help="only keys starting with this prefix")
    corrupt.add_argument(
        "--match", help="only artifacts whose payload contains this substring"
    )
    corrupt.add_argument(
        "--mode", choices=("truncate", "garbage"), default="truncate"
    )

    plan = commands.add_parser("plan", help="write a chaos plan file")
    plan.add_argument("path", help="plan JSON path (point CGPA_CHAOS here)")
    plan.add_argument("--marker-dir", help="once-only marker directory")
    plan.add_argument(
        "--event", action="append", default=[], metavar="KIND:INDEX[:ARG]",
        help="kill-worker:2 | delay:1:0.5 | corrupt-artifact:0:STORE_ROOT",
    )

    args = parser.parse_args(argv)
    if args.command == "corrupt":
        corrupted = corrupt_artifact(
            args.root, key=args.key, mode=args.mode, match=args.match
        )
        if corrupted is None:
            print("no artifact matched", file=sys.stderr)
            return 1
        print(corrupted)
        return 0
    events = [_parse_event(text) for text in args.event]
    write_plan(args.path, events, marker_dir=args.marker_dir)
    print(args.path)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
