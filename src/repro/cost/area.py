"""ALUT / BRAM area model (Table 3's area columns).

Area is estimated from the datapath: every IR operation in a worker
module instantiates one functional unit (spatial HLS), plus FSM control
logic, FIFO controllers, and the cache request/response arbiter slices.
Called functions become sub-modules, instantiated once per worker that
calls them (each worker is an independent hardware module with its own
control, per Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.function import Function
from ..ir.instructions import Call
from ..ir.primitives import ChannelPlan
from ..rtl.resources import (
    ARBITER_ALUTS_PER_PORT,
    FIFO_ALUTS_PER_CHANNEL,
    FSM_BASE_ALUTS,
    cost_of,
)


@dataclass
class AreaReport:
    """Area breakdown of one accelerator configuration."""

    worker_aluts: dict[str, int] = field(default_factory=dict)
    fifo_aluts: int = 0
    arbiter_aluts: int = 0
    bram_bits: int = 0

    @property
    def total_aluts(self) -> int:
        return sum(self.worker_aluts.values()) + self.fifo_aluts + self.arbiter_aluts


def function_aluts(function: Function, _seen: frozenset[str] = frozenset()) -> int:
    """Datapath + control ALUTs of one hardware module (with sub-modules)."""
    total = FSM_BASE_ALUTS
    callees: dict[str, Function] = {}
    for inst in function.instructions():
        total += cost_of(inst).aluts
        if isinstance(inst, Call) and not inst.callee.is_declaration:
            callees[inst.callee.name] = inst.callee
    for name, callee in callees.items():
        if name in _seen:
            continue  # recursion: one instance suffices
        total += function_aluts(callee, _seen | {name})
    return total


def accelerator_area(
    tasks: list[Function],
    worker_counts: list[int],
    channels: ChannelPlan | None = None,
    cache_ports: int = 8,
) -> AreaReport:
    """Area of a CGPA pipeline: per-stage workers + FIFOs + arbiter.

    ``tasks[i]`` is instantiated ``worker_counts[i]`` times (the parallel
    stage replicates its module per worker — the dominant term behind the
    paper's ~4.1x ALUT overhead).
    """
    report = AreaReport()
    for task, count in zip(tasks, worker_counts):
        module_aluts = function_aluts(task)
        report.worker_aluts[task.name] = module_aluts * count
    if channels is not None:
        for channel in channels:
            report.fifo_aluts += FIFO_ALUTS_PER_CHANNEL * channel.n_channels
            slots = channel.fifo_slots_per_value
            report.bram_bits += 32 * slots * channel.depth * channel.n_channels
    report.arbiter_aluts = ARBITER_ALUTS_PER_PORT * cache_ports
    return report


def single_module_area(function: Function, cache_ports: int = 1) -> AreaReport:
    """Area of a LegUp-style single-FSM accelerator for ``function``."""
    report = AreaReport()
    report.worker_aluts[function.name] = function_aluts(function)
    report.arbiter_aluts = ARBITER_ALUTS_PER_PORT * cache_ports
    return report
