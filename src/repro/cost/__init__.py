"""Area, power and energy cost models for generated accelerators."""

from .area import AreaReport, accelerator_area, function_aluts, single_module_area
from .power import DEFAULT_FREQUENCY_HZ, PowerReport, power_report

#: Bump whenever the area/power constants or aggregation rules change in a
#: way that alters reported numbers, or the serialised ``EvalResult``
#: schema grows a field.  Part of every design-space-exploration cache key
#: (:mod:`repro.dse.cache`), so stale sweep results are never reused
#: across cost-model revisions.
#:
#: 2: typed failure classification + ``EvalResult.diagnosis``.
COST_MODEL_VERSION = 2

__all__ = [
    "AreaReport", "accelerator_area", "single_module_area", "function_aluts",
    "PowerReport", "power_report", "DEFAULT_FREQUENCY_HZ",
    "COST_MODEL_VERSION",
]
