"""Area, power and energy cost models for generated accelerators."""

from .area import AreaReport, accelerator_area, function_aluts, single_module_area
from .power import DEFAULT_FREQUENCY_HZ, PowerReport, power_report

__all__ = [
    "AreaReport", "accelerator_area", "single_module_area", "function_aluts",
    "PowerReport", "power_report", "DEFAULT_FREQUENCY_HZ",
]
