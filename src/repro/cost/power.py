"""Activity-based power and energy model (Table 3's power/energy columns).

Power = static + dynamic.  Static power scales with ALUT count (leakage
plus clock tree); dynamic energy is accumulated per executed operation,
per cache access and per FIFO push/pop from the simulator's activity
counters — the same methodology as the paper's PowerPlay estimation from
post-fitter activity files, with per-op energies as calibration constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.system import SimReport
from ..ir.function import Function
from ..ir.instructions import Instruction
from ..rtl.resources import (
    CACHE_HIT_PJ,
    CACHE_MISS_PJ,
    FIFO_ACCESS_PJ,
    STATIC_UW_PER_ALUT,
    cost_of,
)
from .area import AreaReport

#: Paper Section 4.1: 200 MHz synthesis target.
DEFAULT_FREQUENCY_HZ = 200e6


@dataclass
class PowerReport:
    """Power/energy summary of one simulated run."""

    cycles: int
    time_s: float
    dynamic_energy_j: float
    static_power_w: float

    @property
    def dynamic_power_w(self) -> float:
        return self.dynamic_energy_j / self.time_s if self.time_s else 0.0

    @property
    def total_power_w(self) -> float:
        return self.static_power_w + self.dynamic_power_w

    @property
    def total_energy_j(self) -> float:
        return self.total_power_w * self.time_s

    @property
    def power_mw(self) -> float:
        return self.total_power_w * 1e3

    @property
    def energy_uj(self) -> float:
        return self.total_energy_j * 1e6


def _op_energy_pj(functions: list[Function], ops_executed) -> float:
    """Map executed-opcode counters to energy using each function's ops."""
    # Build a representative per-opcode energy from the functions' actual
    # instruction mix (f64 ops cost more than f32/int of the same opcode).
    per_opcode: dict[str, list[float]] = {}
    for function in functions:
        for inst in function.instructions():
            per_opcode.setdefault(inst.opcode, []).append(cost_of(inst).energy_pj)
    total = 0.0
    for opcode, count in ops_executed.items():
        candidates = per_opcode.get(opcode)
        mean = sum(candidates) / len(candidates) if candidates else 1.0
        total += mean * count
    return total


def power_report(
    sim: SimReport,
    area: AreaReport,
    functions: list[Function],
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
) -> PowerReport:
    """Combine simulator activity and area into power/energy figures."""
    time_s = sim.cycles / frequency_hz
    dynamic_pj = 0.0
    for stats in sim.worker_stats.values():
        dynamic_pj += _op_energy_pj(functions, stats.ops_executed)
        dynamic_pj += FIFO_ACCESS_PJ * (stats.fifo_pushes + stats.fifo_pops)
    dynamic_pj += CACHE_HIT_PJ * sim.cache_stats.hits
    dynamic_pj += CACHE_MISS_PJ * sim.cache_stats.misses
    static_w = area.total_aluts * STATIC_UW_PER_ALUT * 1e-6
    # BRAM static contribution (FIFO storage).
    static_w += area.bram_bits * 0.01e-6
    return PowerReport(
        cycles=sim.cycles,
        time_s=time_s,
        dynamic_energy_j=dynamic_pj * 1e-12,
        static_power_w=static_w,
    )
