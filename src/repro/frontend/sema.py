"""Semantic analysis: resolve types and build the module skeleton.

The declaration pass turns struct/typedef declarations into IR
:class:`~repro.ir.types.StructType` objects, registers globals and
function signatures, and hands the :class:`TypeContext` to the lowering
pass.  Doing declarations first lets function bodies call functions
defined later in the file (the kernels are written naturally).
"""

from __future__ import annotations

from ..errors import SemanticError
from ..ir.module import Module
from ..ir.types import (
    F32,
    F64,
    I8,
    I32,
    VOID,
    ArrayType,
    FunctionType,
    PointerType,
    StructType,
    Type,
)
from . import ast_nodes as ast

BUILTIN_SCALARS: dict[str, Type] = {
    "void": VOID,
    "int": I32,
    "char": I8,
    "float": F32,
    "double": F64,
}


class TypeContext:
    """Maps syntactic :class:`~repro.frontend.ast_nodes.CTypeExpr` to IR types."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.typedefs: dict[str, StructType] = {}

    def resolve(self, expr: ast.CTypeExpr) -> Type:
        base = self._resolve_base(expr)
        result: Type = base
        for _ in range(expr.pointer_depth):
            # void* is modelled as char* (i8*) so it has a GEP-able pointee.
            if result.is_void:
                result = I8
            result = PointerType(result)
        if result.is_void and expr.pointer_depth:
            raise SemanticError(f"line {expr.line}: cannot form {expr}")
        return result

    def _resolve_base(self, expr: ast.CTypeExpr) -> Type:
        base = expr.base
        if base in BUILTIN_SCALARS:
            return BUILTIN_SCALARS[base]
        if base.startswith("struct:"):
            return self.module.get_struct(base.split(":", 1)[1])
        if base in self.typedefs:
            return self.typedefs[base]
        raise SemanticError(f"line {expr.line}: unknown type {expr}")


def analyze(unit: ast.TranslationUnit, module_name: str = "module") -> tuple[Module, TypeContext]:
    """Run the declaration pass; returns the module and type context.

    Function bodies are *not* lowered here; :mod:`repro.frontend.lower`
    does that with the returned context.
    """
    module = Module(module_name)
    ctx = TypeContext(module)

    # First sweep: struct tags and typedef names so member types resolve.
    for decl in unit.decls:
        if isinstance(decl, ast.StructDecl):
            struct = module.get_struct(decl.tag)
            if decl.typedef_name:
                ctx.typedefs[decl.typedef_name] = struct

    # Second sweep: struct bodies (fields may reference any declared tag).
    for decl in unit.decls:
        if isinstance(decl, ast.StructDecl):
            struct = module.get_struct(decl.tag)
            fields: list[tuple[str, Type]] = []
            for f in decl.fields:
                ftype = ctx.resolve(f.type)
                if f.array_length is not None:
                    ftype = ArrayType(ftype, f.array_length)
                fields.append((f.name, ftype))
            if struct.is_opaque:
                struct.set_fields(fields)
            else:
                raise SemanticError(f"line {decl.line}: struct {decl.tag} redefined")

    # Third sweep: globals and function signatures.
    for decl in unit.decls:
        if isinstance(decl, ast.GlobalDecl):
            _declare_global(module, ctx, decl)
        elif isinstance(decl, ast.FunctionDecl):
            _declare_function(module, ctx, decl)

    return module, ctx


def _declare_global(module: Module, ctx: TypeContext, decl: ast.GlobalDecl) -> None:
    vtype = ctx.resolve(decl.type)
    if decl.array_length is not None:
        vtype = ArrayType(vtype, decl.array_length)
    init = None
    if decl.init_values is not None:
        scalar = vtype.element if isinstance(vtype, ArrayType) else vtype
        count = vtype.count if isinstance(vtype, ArrayType) else 1
        values = list(decl.init_values)
        if len(values) > count:
            raise SemanticError(
                f"line {decl.line}: too many initializers for @{decl.name}"
            )
        values += [0] * (count - len(values))
        cast = float if scalar.is_float else int
        init = [cast(v) for v in values]
    module.add_global(vtype, decl.name, init)


def _declare_function(module: Module, ctx: TypeContext, decl: ast.FunctionDecl) -> None:
    return_type = ctx.resolve(decl.return_type)
    param_types = [ctx.resolve(p.type) for p in decl.params]
    for p, t in zip(decl.params, param_types):
        if t.is_void:
            raise SemanticError(f"line {p.line}: parameter {p.name} has void type")
    ftype = FunctionType(return_type, param_types)
    if decl.name in module.functions:
        existing = module.functions[decl.name]
        if existing.function_type != ftype:
            raise SemanticError(
                f"line {decl.line}: conflicting declaration of {decl.name}"
            )
        return
    module.new_function(decl.name, ftype, [p.name for p in decl.params])
