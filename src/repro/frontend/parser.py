"""Recursive-descent parser for the C subset.

Produces the AST of :mod:`repro.frontend.ast_nodes`.  The parser keeps a
set of known type names (builtins, ``struct`` tags seen so far, typedef
names) so it can disambiguate casts and declarations from expressions —
the classic "lexer hack" folded into the parser state.
"""

from __future__ import annotations

from ..errors import ParseError
from . import ast_nodes as ast
from .lexer import Token, tokenize

BUILTIN_TYPE_NAMES = {"void", "int", "char", "float", "double", "unsigned", "long"}

#: Binary operator precedence, higher binds tighter (C levels).
BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0
        self.typedef_names: set[str] = set()
        self.struct_tags: set[str] = set()

    # -- token plumbing -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    def error(self, message: str) -> ParseError:
        tok = self.current
        return ParseError(f"{message} (got {tok.kind} {tok.text!r})", tok.line, tok.column)

    def expect(self, text: str) -> Token:
        if self.current.text != text:
            raise self.error(f"expected {text!r}")
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind != "ident":
            raise self.error("expected identifier")
        return self.advance()

    def accept(self, text: str) -> bool:
        if self.current.text == text:
            self.advance()
            return True
        return False

    # -- type recognition --------------------------------------------------------

    def at_type(self) -> bool:
        tok = self.current
        if tok.kind == "keyword" and tok.text in BUILTIN_TYPE_NAMES | {"struct", "const"}:
            return True
        return tok.kind == "ident" and tok.text in self.typedef_names

    def parse_type(self) -> ast.CTypeExpr:
        line = self.current.line
        self.accept("const")
        tok = self.current
        if tok.text == "struct":
            self.advance()
            tag = self.expect_ident().text
            base = f"struct:{tag}"
        elif tok.text == "unsigned" or tok.text == "long":
            # 'unsigned int', 'long' and friends all map to int on this
            # 32-bit target (long is 32-bit, as on the paper's MIPS).
            self.advance()
            self.accept("int")
            self.accept("long")
            base = "int"
        elif tok.kind == "keyword" and tok.text in BUILTIN_TYPE_NAMES:
            self.advance()
            base = tok.text
        elif tok.kind == "ident" and tok.text in self.typedef_names:
            self.advance()
            base = tok.text
        else:
            raise self.error("expected a type")
        self.accept("const")
        depth = 0
        while self.accept("*"):
            depth += 1
            self.accept("const")
        return ast.CTypeExpr(base=base, pointer_depth=depth, line=line)

    # -- top level ------------------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(line=1)
        while self.current.kind != "eof":
            unit.decls.append(self.parse_top_level())
        return unit

    def parse_top_level(self) -> ast.Node:
        if self.current.text == "typedef":
            return self.parse_typedef()
        if self.current.text == "struct" and self.peek(2).text == "{":
            return self.parse_struct_definition()
        return self.parse_function_or_global()

    def parse_typedef(self) -> ast.StructDecl:
        line = self.expect("typedef").line
        self.expect("struct")
        tag = ""
        if self.current.kind == "ident":
            tag = self.advance().text
            self.struct_tags.add(tag)
        fields = self.parse_struct_body()
        name = self.expect_ident().text
        self.expect(";")
        self.typedef_names.add(name)
        if not tag:
            tag = name
            self.struct_tags.add(tag)
        return ast.StructDecl(tag=tag, fields=fields, typedef_name=name, line=line)

    def parse_struct_definition(self) -> ast.StructDecl:
        line = self.expect("struct").line
        tag = self.expect_ident().text
        self.struct_tags.add(tag)
        fields = self.parse_struct_body()
        self.expect(";")
        return ast.StructDecl(tag=tag, fields=fields, typedef_name=None, line=line)

    def parse_struct_body(self) -> list[ast.DeclStmt]:
        self.expect("{")
        fields: list[ast.DeclStmt] = []
        while not self.accept("}"):
            ftype = self.parse_type()
            fname = self.expect_ident().text
            length = None
            if self.accept("["):
                length = self.parse_int_constant()
                self.expect("]")
            self.expect(";")
            fields.append(
                ast.DeclStmt(type=ftype, name=fname, array_length=length, line=ftype.line)
            )
        return fields

    def parse_int_constant(self) -> int:
        if self.current.kind != "int":
            raise self.error("expected integer constant")
        return _parse_int(self.advance().text)

    def parse_function_or_global(self) -> ast.Node:
        decl_type = self.parse_type()
        name_tok = self.expect_ident()
        if self.current.text == "(":
            return self.parse_function_rest(decl_type, name_tok)
        return self.parse_global_rest(decl_type, name_tok)

    def parse_function_rest(
        self, return_type: ast.CTypeExpr, name_tok: Token
    ) -> ast.FunctionDecl:
        self.expect("(")
        params: list[ast.ParamDecl] = []
        if not self.accept(")"):
            if self.current.text == "void" and self.peek().text == ")":
                self.advance()
                self.expect(")")
            else:
                while True:
                    ptype = self.parse_type()
                    pname = self.expect_ident().text
                    params.append(ast.ParamDecl(type=ptype, name=pname, line=ptype.line))
                    if not self.accept(","):
                        break
                self.expect(")")
        if self.accept(";"):
            body = None
        else:
            body = self.parse_compound()
        return ast.FunctionDecl(
            return_type=return_type,
            name=name_tok.text,
            params=params,
            body=body,
            line=name_tok.line,
        )

    def parse_global_rest(
        self, decl_type: ast.CTypeExpr, name_tok: Token
    ) -> ast.GlobalDecl:
        length = None
        if self.accept("["):
            length = self.parse_int_constant()
            self.expect("]")
        init_values = None
        if self.accept("="):
            init_values = []
            if self.accept("{"):
                while not self.accept("}"):
                    init_values.append(self.parse_number_constant())
                    self.accept(",")
            else:
                init_values.append(self.parse_number_constant())
        self.expect(";")
        return ast.GlobalDecl(
            type=decl_type,
            name=name_tok.text,
            array_length=length,
            init_values=init_values,
            line=name_tok.line,
        )

    def parse_number_constant(self) -> float:
        negative = self.accept("-")
        tok = self.current
        if tok.kind == "int":
            value: float = _parse_int(self.advance().text)
        elif tok.kind == "float":
            value = float(self.advance().text.rstrip("f"))
        else:
            raise self.error("expected numeric constant")
        return -value if negative else value

    # -- statements --------------------------------------------------------------------

    def parse_compound(self) -> ast.CompoundStmt:
        line = self.expect("{").line
        body: list[ast.Node] = []
        while not self.accept("}"):
            body.append(self.parse_statement())
        return ast.CompoundStmt(body=body, line=line)

    def parse_statement(self) -> ast.Node:
        tok = self.current
        if tok.text == "{":
            return self.parse_compound()
        if tok.text == "if":
            return self.parse_if()
        if tok.text == "while":
            return self.parse_while()
        if tok.text == "do":
            return self.parse_do_while()
        if tok.text == "for":
            return self.parse_for()
        if tok.text == "return":
            self.advance()
            value = None if self.current.text == ";" else self.parse_expression()
            self.expect(";")
            return ast.ReturnStmt(value=value, line=tok.line)
        if tok.text == "break":
            self.advance()
            self.expect(";")
            return ast.BreakStmt(line=tok.line)
        if tok.text == "continue":
            self.advance()
            self.expect(";")
            return ast.ContinueStmt(line=tok.line)
        if self.at_type():
            return self.parse_declaration()
        if self.accept(";"):
            return ast.CompoundStmt(body=[], line=tok.line)
        expr = self.parse_expression()
        self.expect(";")
        return ast.ExprStmt(expr=expr, line=tok.line)

    def parse_declaration(self) -> ast.DeclStmt:
        decl_type = self.parse_type()
        name = self.expect_ident().text
        length = None
        if self.accept("["):
            length = self.parse_int_constant()
            self.expect("]")
        init = None
        if self.accept("="):
            init = self.parse_assignment()
        self.expect(";")
        return ast.DeclStmt(
            type=decl_type, name=name, array_length=length, init=init, line=decl_type.line
        )

    def parse_if(self) -> ast.IfStmt:
        line = self.expect("if").line
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        then_body = self.parse_statement()
        else_body = self.parse_statement() if self.accept("else") else None
        return ast.IfStmt(cond=cond, then_body=then_body, else_body=else_body, line=line)

    def parse_while(self) -> ast.WhileStmt:
        line = self.expect("while").line
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        return ast.WhileStmt(cond=cond, body=self.parse_statement(), line=line)

    def parse_do_while(self) -> ast.DoWhileStmt:
        line = self.expect("do").line
        body = self.parse_statement()
        self.expect("while")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        self.expect(";")
        return ast.DoWhileStmt(body=body, cond=cond, line=line)

    def parse_for(self) -> ast.ForStmt:
        line = self.expect("for").line
        self.expect("(")
        init: ast.Node | None = None
        if not self.accept(";"):
            if self.at_type():
                init = self.parse_declaration()  # consumes ';'
            else:
                init = ast.ExprStmt(expr=self.parse_expression(), line=line)
                self.expect(";")
        cond = None
        if not self.accept(";"):
            cond = self.parse_expression()
            self.expect(";")
        step = None
        if self.current.text != ")":
            step = self.parse_expression()
        self.expect(")")
        return ast.ForStmt(
            init=init, cond=cond, step=step, body=self.parse_statement(), line=line
        )

    # -- expressions --------------------------------------------------------------------

    def parse_expression(self) -> ast.Node:
        expr = self.parse_assignment()
        while self.accept(","):
            # Comma expression: evaluate both, keep the right value.
            rhs = self.parse_assignment()
            expr = ast.BinaryExpr(op=",", lhs=expr, rhs=rhs, line=rhs.line)
        return expr

    def parse_assignment(self) -> ast.Node:
        lhs = self.parse_conditional()
        if self.current.text in ASSIGN_OPS:
            op = self.advance().text
            rhs = self.parse_assignment()
            return ast.AssignExpr(op=op, lhs=lhs, rhs=rhs, line=lhs.line)
        return lhs

    def parse_conditional(self) -> ast.Node:
        cond = self.parse_binary(1)
        if self.accept("?"):
            if_true = self.parse_expression()
            self.expect(":")
            if_false = self.parse_conditional()
            return ast.ConditionalExpr(
                cond=cond, if_true=if_true, if_false=if_false, line=cond.line
            )
        return cond

    def parse_binary(self, min_prec: int) -> ast.Node:
        lhs = self.parse_unary()
        while True:
            op = self.current.text
            prec = BINARY_PRECEDENCE.get(op)
            if (
                prec is None
                or prec < min_prec
                or self.current.kind != "op"
                or op in ASSIGN_OPS
            ):
                return lhs
            self.advance()
            rhs = self.parse_binary(prec + 1)
            lhs = ast.BinaryExpr(op=op, lhs=lhs, rhs=rhs, line=lhs.line)

    def parse_unary(self) -> ast.Node:
        tok = self.current
        if tok.text in ("-", "!", "~", "*", "&"):
            self.advance()
            return ast.UnaryExpr(op=tok.text, operand=self.parse_unary(), line=tok.line)
        if tok.text in ("++", "--"):
            self.advance()
            return ast.UnaryExpr(op=tok.text, operand=self.parse_unary(), line=tok.line)
        if tok.text == "sizeof":
            self.advance()
            self.expect("(")
            target = self.parse_type()
            self.expect(")")
            return ast.SizeofExpr(target=target, line=tok.line)
        if tok.text == "(" and self._is_cast():
            self.advance()
            target = self.parse_type()
            self.expect(")")
            return ast.CastExpr(target=target, operand=self.parse_unary(), line=tok.line)
        return self.parse_postfix()

    def _is_cast(self) -> bool:
        """True when '(' starts a cast rather than a parenthesised expr."""
        assert self.current.text == "("
        nxt = self.peek()
        if nxt.kind == "keyword" and nxt.text in BUILTIN_TYPE_NAMES | {"struct", "const"}:
            return True
        return nxt.kind == "ident" and nxt.text in self.typedef_names

    def parse_postfix(self) -> ast.Node:
        expr = self.parse_primary()
        while True:
            tok = self.current
            if tok.text == "[":
                self.advance()
                index = self.parse_expression()
                self.expect("]")
                expr = ast.IndexExpr(base=expr, index=index, line=tok.line)
            elif tok.text == ".":
                self.advance()
                member = self.expect_ident().text
                expr = ast.MemberExpr(base=expr, member=member, arrow=False, line=tok.line)
            elif tok.text == "->":
                self.advance()
                member = self.expect_ident().text
                expr = ast.MemberExpr(base=expr, member=member, arrow=True, line=tok.line)
            elif tok.text in ("++", "--"):
                self.advance()
                expr = ast.PostfixIncDec(op=tok.text, operand=expr, line=tok.line)
            else:
                return expr

    def parse_primary(self) -> ast.Node:
        tok = self.current
        if tok.kind == "int":
            self.advance()
            return ast.IntLiteral(value=_parse_int(tok.text), line=tok.line)
        if tok.kind == "float":
            self.advance()
            return ast.FloatLiteral(
                value=float(tok.text.rstrip("f")),
                is_single=tok.text.endswith("f"),
                line=tok.line,
            )
        if tok.kind == "ident":
            if self.peek().text == "(":
                name = self.advance().text
                self.expect("(")
                args: list[ast.Node] = []
                if not self.accept(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept(","):
                            break
                    self.expect(")")
                return ast.CallExpr(name=name, args=args, line=tok.line)
            self.advance()
            if tok.text == "NULL":
                return ast.IntLiteral(value=0, line=tok.line)
            return ast.Identifier(name=tok.text, line=tok.line)
        if tok.text == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect(")")
            return expr
        raise self.error("expected an expression")


def _parse_int(text: str) -> int:
    text = text.rstrip("uUlL")
    return int(text, 0)


def parse(source: str) -> ast.TranslationUnit:
    """Parse C source text into a translation unit AST."""
    return Parser(source).parse_translation_unit()
