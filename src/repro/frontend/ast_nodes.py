"""Abstract syntax tree for the C subset.

Plain dataclasses; every node carries a source line for diagnostics.
Type names in the AST are :class:`CTypeExpr` values resolved to IR types
during semantic analysis (structs may be used before their definition).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Node:
    """Base class of all AST nodes; carries the source line."""

    line: int = field(default=0, kw_only=True)


# -- type expressions (syntactic; resolved by sema) ---------------------------


@dataclass
class CTypeExpr(Node):
    """A syntactic type: base name plus pointer depth.

    ``base`` is one of ``void int char float double`` or ``struct:<tag>``
    or a typedef name.
    """

    base: str = ""
    pointer_depth: int = 0

    def with_pointer(self, extra: int = 1) -> "CTypeExpr":
        return CTypeExpr(
            base=self.base, pointer_depth=self.pointer_depth + extra, line=self.line
        )

    def __str__(self) -> str:
        return self.base + "*" * self.pointer_depth


# -- expressions ---------------------------------------------------------------


@dataclass
class IntLiteral(Node):
    """Integer (or character) literal."""

    value: int = 0


@dataclass
class FloatLiteral(Node):
    """Floating-point literal; ``is_single`` for an 'f' suffix."""

    value: float = 0.0
    is_single: bool = False  # 'f' suffix


@dataclass
class Identifier(Node):
    """A name reference (variable or global)."""

    name: str = ""


@dataclass
class BinaryExpr(Node):
    """Infix binary expression (including the comma operator)."""

    op: str = ""
    lhs: Node = None
    rhs: Node = None


@dataclass
class UnaryExpr(Node):
    """Prefix unary: ``- ! ~ * & ++ --``."""

    op: str = ""
    operand: Node = None


@dataclass
class PostfixIncDec(Node):
    """Postfix ``x++`` / ``x--``."""

    op: str = ""  # '++' or '--'
    operand: Node = None


@dataclass
class AssignExpr(Node):
    """``lhs op rhs`` where op is ``=`` or a compound like ``+=``."""

    op: str = "="
    lhs: Node = None
    rhs: Node = None


@dataclass
class ConditionalExpr(Node):
    """Ternary ``cond ? a : b``."""

    cond: Node = None
    if_true: Node = None
    if_false: Node = None


@dataclass
class CallExpr(Node):
    """Function call by name."""

    name: str = ""
    args: list[Node] = field(default_factory=list)


@dataclass
class IndexExpr(Node):
    """Array subscript ``base[index]``."""

    base: Node = None
    index: Node = None


@dataclass
class MemberExpr(Node):
    """Member access ``base.member`` or ``base->member``."""

    base: Node = None
    member: str = ""
    arrow: bool = False  # True for '->'


@dataclass
class CastExpr(Node):
    """Explicit cast ``(type)expr``."""

    target: CTypeExpr = None
    operand: Node = None


@dataclass
class SizeofExpr(Node):
    """``sizeof(type)``."""

    target: CTypeExpr = None


# -- statements -----------------------------------------------------------------


@dataclass
class ExprStmt(Node):
    """Expression evaluated for its side effects."""

    expr: Node = None


@dataclass
class DeclStmt(Node):
    """A local declaration, possibly with array suffix and initializer."""

    type: CTypeExpr = None
    name: str = ""
    array_length: int | None = None
    init: Node = None


@dataclass
class CompoundStmt(Node):
    """Braced block (its own lexical scope)."""

    body: list[Node] = field(default_factory=list)


@dataclass
class IfStmt(Node):
    """``if``/``else`` statement."""

    cond: Node = None
    then_body: Node = None
    else_body: Node = None


@dataclass
class WhileStmt(Node):
    """``while`` loop."""

    cond: Node = None
    body: Node = None


@dataclass
class DoWhileStmt(Node):
    """``do ... while`` loop."""

    body: Node = None
    cond: Node = None


@dataclass
class ForStmt(Node):
    """``for`` loop with optional init/cond/step."""

    init: Node = None  # DeclStmt, ExprStmt, or None
    cond: Node = None
    step: Node = None
    body: Node = None


@dataclass
class ReturnStmt(Node):
    """``return`` with an optional value."""

    value: Node = None


@dataclass
class BreakStmt(Node):
    """``break`` out of the innermost loop."""

    pass


@dataclass
class ContinueStmt(Node):
    """``continue`` to the innermost loop's next iteration."""

    pass


# -- top level --------------------------------------------------------------------


@dataclass
class ParamDecl(Node):
    """One formal parameter of a function."""

    type: CTypeExpr = None
    name: str = ""


@dataclass
class FunctionDecl(Node):
    """Function definition or prototype (body is None)."""

    return_type: CTypeExpr = None
    name: str = ""
    params: list[ParamDecl] = field(default_factory=list)
    body: CompoundStmt = None  # None for prototypes


@dataclass
class StructDecl(Node):
    """``struct``/``typedef struct`` declaration with its fields."""

    tag: str = ""
    fields: list[DeclStmt] = field(default_factory=list)
    typedef_name: str | None = None


@dataclass
class GlobalDecl(Node):
    """Module-level variable, optionally an initialised array."""

    type: CTypeExpr = None
    name: str = ""
    array_length: int | None = None
    init_values: list[float] | None = None


@dataclass
class TranslationUnit(Node):
    """The whole parsed source file."""

    decls: list[Node] = field(default_factory=list)
