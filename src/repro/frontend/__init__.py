"""C-subset frontend: lexer, parser, semantic analysis, IR lowering."""

from .ast_nodes import TranslationUnit
from .lexer import Token, tokenize
from .lower import compile_c
from .parser import Parser, parse
from .sema import TypeContext, analyze

__all__ = [
    "tokenize", "Token", "parse", "Parser", "analyze", "TypeContext",
    "compile_c", "TranslationUnit",
]
