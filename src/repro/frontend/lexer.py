"""Lexer for the C subset accepted by the CGPA frontend.

The subset covers what the five benchmark kernels and typical irregular
pointer-chasing code need: the usual operators, control keywords,
``struct``/``typedef`` declarations, integer/float literals, and comments.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import LexerError

KEYWORDS = {
    "void", "int", "char", "float", "double", "unsigned", "long",
    "struct", "typedef", "if", "else", "for", "while", "do", "return",
    "break", "continue", "sizeof", "const",
}

#: Multi-character operators, longest first so maximal munch works.
MULTI_OPS = [
    "<<=", ">>=",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
]

SINGLE_OPS = set("+-*/%<>=!&|^~?:.,;(){}[]")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str  # 'ident', 'keyword', 'int', 'float', 'op', 'eof'
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r} @{self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Convert C source text into a token list ending with an ``eof`` token."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(message: str) -> LexerError:
        return LexerError(message, line, col)

    while i < n:
        ch = source[i]
        # Whitespace.
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        # Comments.
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise error("unterminated block comment")
            skipped = source[i : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        # Identifiers and keywords.
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            col += i - start
            continue
        # Numbers: int, hex int, float (with '.', exponent, 'f' suffix).
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            is_float = False
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
            else:
                while i < n and source[i].isdigit():
                    i += 1
                if i < n and source[i] == ".":
                    is_float = True
                    i += 1
                    while i < n and source[i].isdigit():
                        i += 1
                if i < n and source[i] in "eE":
                    is_float = True
                    i += 1
                    if i < n and source[i] in "+-":
                        i += 1
                    if i >= n or not source[i].isdigit():
                        raise error("malformed float exponent")
                    while i < n and source[i].isdigit():
                        i += 1
            text = source[start:i]
            if i < n and source[i] in "fF" and is_float:
                i += 1
                text += "f"
            elif i < n and source[i] in "uUlL":
                while i < n and source[i] in "uUlL":
                    i += 1
            tokens.append(Token("float" if is_float else "int", text, line, col))
            col += i - start
            continue
        # Character literals (for hash keys etc.).
        if ch == "'":
            if i + 2 < n and source[i + 1] == "\\" and source[i + 3] == "'":
                mapping = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39}
                esc = source[i + 2]
                if esc not in mapping:
                    raise error(f"unsupported escape '\\{esc}'")
                tokens.append(Token("int", str(mapping[esc]), line, col))
                i += 4
                col += 4
                continue
            if i + 2 < n and source[i + 2] == "'":
                tokens.append(Token("int", str(ord(source[i + 1])), line, col))
                i += 3
                col += 3
                continue
            raise error("malformed character literal")
        # Operators.
        matched = False
        for op in MULTI_OPS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                i += len(op)
                col += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in SINGLE_OPS:
            tokens.append(Token("op", ch, line, col))
            i += 1
            col += 1
            continue
        raise error(f"unexpected character {ch!r}")

    tokens.append(Token("eof", "", line, col))
    return tokens
