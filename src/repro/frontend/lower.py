"""AST → IR lowering.

Locals live in ``alloca`` slots (promoted to SSA registers afterwards by
:mod:`repro.transforms.mem2reg`, mirroring the clang/LLVM pipeline the
paper builds on).  The lowering implements C's implicit conversions,
array-to-pointer decay, short-circuit evaluation, and pointer arithmetic.
"""

from __future__ import annotations

from ..errors import SemanticError
from ..ir.basicblock import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.module import Module
from ..ir.types import (
    BOOL,
    F32,
    F64,
    I8,
    I32,
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
    VOID,
)
from ..ir.values import Constant, Value
from . import ast_nodes as ast
from .parser import parse
from .sema import TypeContext, analyze


def compile_c(source: str, module_name: str = "module") -> Module:
    """Front door: parse, analyze and lower C source into an IR module."""
    unit = parse(source)
    module, ctx = analyze(unit, module_name)
    for decl in unit.decls:
        if isinstance(decl, ast.FunctionDecl) and decl.body is not None:
            _FunctionLowerer(module, ctx, decl).lower()
    return module


class _Scope:
    """One lexical scope of local variables: name -> (slot addr, type)."""

    def __init__(self) -> None:
        self.vars: dict[str, tuple[Value, Type]] = {}


class _FunctionLowerer:
    def __init__(self, module: Module, ctx: TypeContext, decl: ast.FunctionDecl) -> None:
        self.module = module
        self.ctx = ctx
        self.decl = decl
        self.function: Function = module.get_function(decl.name)
        self.builder = IRBuilder()
        self.scopes: list[_Scope] = []
        self.break_targets: list[BasicBlock] = []
        self.continue_targets: list[BasicBlock] = []
        self._entry: BasicBlock | None = None
        self._alloca_count = 0

    # -- scope handling ----------------------------------------------------------

    def push_scope(self) -> None:
        self.scopes.append(_Scope())

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, slot: Value, type_: Type, line: int) -> None:
        scope = self.scopes[-1]
        if name in scope.vars:
            raise SemanticError(f"line {line}: redeclaration of {name!r}")
        scope.vars[name] = (slot, type_)

    def lookup(self, name: str) -> tuple[Value, Type] | None:
        for scope in reversed(self.scopes):
            if name in scope.vars:
                return scope.vars[name]
        return None

    def _new_alloca(self, type_: Type, name: str) -> Value:
        """Create an alloca at the top of the entry block (mem2reg-friendly)."""
        from ..ir.instructions import Alloca

        slot = Alloca(type_, name)
        assert self._entry is not None
        self._entry.insert(self._alloca_count, slot)
        self._alloca_count += 1
        return slot

    # -- driver -------------------------------------------------------------------

    def lower(self) -> Function:
        self._entry = self.function.new_block("entry")
        self.builder.set_block(self._entry)
        self.push_scope()
        for param, arg in zip(self.decl.params, self.function.args):
            ptype = self.ctx.resolve(param.type)
            slot = self._new_alloca(ptype, param.name)
            self.builder.store(arg, slot)
            self.declare(param.name, slot, ptype, param.line)
        self.lower_stmt(self.decl.body)
        self.pop_scope()
        self._finalize()
        return self.function

    def _finalize(self) -> None:
        return_type = self.function.function_type.return_type
        for block in self.function.blocks:
            if block.terminator is None:
                self.builder.set_block(block)
                if return_type.is_void:
                    self.builder.ret()
                else:
                    self.builder.ret(_zero_of(return_type))

    # -- statements -------------------------------------------------------------------

    def lower_stmt(self, stmt: ast.Node) -> None:
        if isinstance(stmt, ast.CompoundStmt):
            self.push_scope()
            for sub in stmt.body:
                self.lower_stmt(sub)
            self.pop_scope()
        elif isinstance(stmt, ast.DeclStmt):
            self._lower_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.rvalue(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhileStmt):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.BreakStmt):
            if not self.break_targets:
                raise SemanticError(f"line {stmt.line}: break outside a loop")
            self.builder.jump(self.break_targets[-1])
            self._start_dead_block("after.break")
        elif isinstance(stmt, ast.ContinueStmt):
            if not self.continue_targets:
                raise SemanticError(f"line {stmt.line}: continue outside a loop")
            self.builder.jump(self.continue_targets[-1])
            self._start_dead_block("after.continue")
        else:
            raise SemanticError(f"line {stmt.line}: cannot lower {type(stmt).__name__}")

    def _start_dead_block(self, name: str) -> None:
        self.builder.set_block(self.function.new_block(name))

    def _lower_decl(self, stmt: ast.DeclStmt) -> None:
        vtype = self.ctx.resolve(stmt.type)
        if stmt.array_length is not None:
            vtype = ArrayType(vtype, stmt.array_length)
        if vtype.is_void:
            raise SemanticError(f"line {stmt.line}: variable {stmt.name} has void type")
        slot = self._new_alloca(vtype, stmt.name)
        self.declare(stmt.name, slot, vtype, stmt.line)
        if stmt.init is not None:
            value = self.convert(self.rvalue(stmt.init), vtype, stmt.line)
            self.builder.store(value, slot)

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        then_block = self.function.new_block("if.then")
        merge_block = self.function.new_block("if.end")
        else_block = (
            self.function.new_block("if.else") if stmt.else_body else merge_block
        )
        cond = self.condition(stmt.cond)
        self.builder.cond_branch(cond, then_block, else_block)
        self.builder.set_block(then_block)
        self.lower_stmt(stmt.then_body)
        if self.builder.block.terminator is None:
            self.builder.jump(merge_block)
        if stmt.else_body:
            self.builder.set_block(else_block)
            self.lower_stmt(stmt.else_body)
            if self.builder.block.terminator is None:
                self.builder.jump(merge_block)
        self.builder.set_block(merge_block)

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        header = self.function.new_block("while.cond")
        body = self.function.new_block("while.body")
        exit_ = self.function.new_block("while.end")
        self.builder.jump(header)
        self.builder.set_block(header)
        self.builder.cond_branch(self.condition(stmt.cond), body, exit_)
        self.break_targets.append(exit_)
        self.continue_targets.append(header)
        self.builder.set_block(body)
        self.lower_stmt(stmt.body)
        if self.builder.block.terminator is None:
            self.builder.jump(header)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.builder.set_block(exit_)

    def _lower_do_while(self, stmt: ast.DoWhileStmt) -> None:
        body = self.function.new_block("do.body")
        cond_block = self.function.new_block("do.cond")
        exit_ = self.function.new_block("do.end")
        self.builder.jump(body)
        self.break_targets.append(exit_)
        self.continue_targets.append(cond_block)
        self.builder.set_block(body)
        self.lower_stmt(stmt.body)
        if self.builder.block.terminator is None:
            self.builder.jump(cond_block)
        self.builder.set_block(cond_block)
        self.builder.cond_branch(self.condition(stmt.cond), body, exit_)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.builder.set_block(exit_)

    def _lower_for(self, stmt: ast.ForStmt) -> None:
        self.push_scope()
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        header = self.function.new_block("for.cond")
        body = self.function.new_block("for.body")
        latch = self.function.new_block("for.inc")
        exit_ = self.function.new_block("for.end")
        self.builder.jump(header)
        self.builder.set_block(header)
        if stmt.cond is not None:
            self.builder.cond_branch(self.condition(stmt.cond), body, exit_)
        else:
            self.builder.jump(body)
        self.break_targets.append(exit_)
        self.continue_targets.append(latch)
        self.builder.set_block(body)
        self.lower_stmt(stmt.body)
        if self.builder.block.terminator is None:
            self.builder.jump(latch)
        self.builder.set_block(latch)
        if stmt.step is not None:
            self.rvalue(stmt.step)
        self.builder.jump(header)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.builder.set_block(exit_)
        self.pop_scope()

    def _lower_return(self, stmt: ast.ReturnStmt) -> None:
        return_type = self.function.function_type.return_type
        if stmt.value is None:
            if not return_type.is_void:
                raise SemanticError(f"line {stmt.line}: return without a value")
            self.builder.ret()
        else:
            value = self.convert(self.rvalue(stmt.value), return_type, stmt.line)
            self.builder.ret(value)
        self._start_dead_block("after.ret")

    # -- expressions: rvalues -------------------------------------------------------

    def rvalue(self, expr: ast.Node) -> Value:
        if isinstance(expr, ast.IntLiteral):
            return IRBuilder.const_int(expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return IRBuilder.const_float(expr.value, F32 if expr.is_single else F64)
        if isinstance(expr, ast.SizeofExpr):
            return IRBuilder.const_int(self.ctx.resolve(expr.target).size())
        if isinstance(expr, ast.Identifier):
            return self._load_or_decay(self.lvalue(expr), expr.line)
        if isinstance(expr, (ast.IndexExpr, ast.MemberExpr)):
            return self._load_or_decay(self.lvalue(expr), expr.line)
        if isinstance(expr, ast.UnaryExpr):
            return self._lower_unary(expr)
        if isinstance(expr, ast.PostfixIncDec):
            return self._lower_incdec(expr.operand, expr.op, post=True, line=expr.line)
        if isinstance(expr, ast.BinaryExpr):
            return self._lower_binary(expr)
        if isinstance(expr, ast.AssignExpr):
            return self._lower_assign(expr)
        if isinstance(expr, ast.ConditionalExpr):
            return self._lower_conditional(expr)
        if isinstance(expr, ast.CallExpr):
            return self._lower_call(expr)
        if isinstance(expr, ast.CastExpr):
            target = self.ctx.resolve(expr.target)
            return self.convert(self.rvalue(expr.operand), target, expr.line, explicit=True)
        raise SemanticError(f"line {expr.line}: cannot lower {type(expr).__name__}")

    def _load_or_decay(self, addr: Value, line: int) -> Value:
        pointee = addr.type.pointee  # type: ignore[union-attr]
        if isinstance(pointee, ArrayType):
            # Array-to-pointer decay: &a[0].
            zero = IRBuilder.const_int(0)
            return self.builder.gep(addr, [zero, zero])
        if isinstance(pointee, StructType):
            raise SemanticError(f"line {line}: struct values are not copyable here")
        return self.builder.load(addr)

    # -- expressions: lvalues --------------------------------------------------------

    def lvalue(self, expr: ast.Node) -> Value:
        if isinstance(expr, ast.Identifier):
            found = self.lookup(expr.name)
            if found is not None:
                return found[0]
            if expr.name in self.module.globals:
                return self.module.globals[expr.name]
            raise SemanticError(f"line {expr.line}: undeclared identifier {expr.name!r}")
        if isinstance(expr, ast.UnaryExpr) and expr.op == "*":
            pointer = self.rvalue(expr.operand)
            if not pointer.type.is_pointer:
                raise SemanticError(f"line {expr.line}: dereference of non-pointer")
            return pointer
        if isinstance(expr, ast.IndexExpr):
            base = self.rvalue(expr.base)  # decays arrays to pointers
            if not base.type.is_pointer:
                raise SemanticError(f"line {expr.line}: subscript of non-pointer")
            index = self._to_int(self.rvalue(expr.index), expr.line)
            return self.builder.gep(base, [index])
        if isinstance(expr, ast.MemberExpr):
            if expr.arrow:
                base = self.rvalue(expr.base)
                if not base.type.is_pointer or not isinstance(
                    base.type.pointee, StructType
                ):
                    raise SemanticError(
                        f"line {expr.line}: '->' on non-struct-pointer"
                    )
                struct = base.type.pointee
            else:
                base = self.lvalue(expr.base)
                if not isinstance(base.type.pointee, StructType):  # type: ignore[union-attr]
                    raise SemanticError(f"line {expr.line}: '.' on non-struct")
                struct = base.type.pointee  # type: ignore[union-attr]
            if struct.is_opaque:
                raise SemanticError(
                    f"line {expr.line}: member access into opaque struct {struct.name}"
                )
            return self.builder.struct_gep(base, struct.field_index(expr.member))
        raise SemanticError(
            f"line {expr.line}: expression is not assignable "
            f"({type(expr).__name__})"
        )

    # -- operators ----------------------------------------------------------------------

    def _lower_unary(self, expr: ast.UnaryExpr) -> Value:
        if expr.op == "*":
            return self._load_or_decay(self.lvalue(expr), expr.line)
        if expr.op == "&":
            return self.lvalue(expr.operand)
        if expr.op in ("++", "--"):
            return self._lower_incdec(expr.operand, expr.op, post=False, line=expr.line)
        value = self.rvalue(expr.operand)
        if expr.op == "-":
            if value.type.is_float:
                return self.builder.fsub(IRBuilder.const_float(0.0, value.type), value)
            value = self._promote_int(value)
            return self.builder.sub(IRBuilder.const_int(0, value.type), value)
        if expr.op == "~":
            value = self._promote_int(value)
            return self.builder.xor(value, IRBuilder.const_int(-1, value.type))
        if expr.op == "!":
            cond = self.as_condition(value)
            return self.builder.xor(cond, IRBuilder.const_bool(True))
        raise SemanticError(f"line {expr.line}: unsupported unary {expr.op!r}")

    def _lower_incdec(self, target: ast.Node, op: str, post: bool, line: int) -> Value:
        addr = self.lvalue(target)
        old = self.builder.load(addr)
        delta = 1 if op == "++" else -1
        if old.type.is_pointer:
            new = self.builder.gep(old, [IRBuilder.const_int(delta)])
        elif old.type.is_float:
            new = self.builder.fadd(old, IRBuilder.const_float(delta, old.type))
        else:
            new = self.builder.add(old, IRBuilder.const_int(delta, old.type))
        self.builder.store(new, addr)
        return old if post else new

    def _lower_binary(self, expr: ast.BinaryExpr) -> Value:
        op = expr.op
        if op == ",":
            self.rvalue(expr.lhs)
            return self.rvalue(expr.rhs)
        if op in ("&&", "||"):
            return self._lower_short_circuit(expr)
        lhs = self.rvalue(expr.lhs)
        rhs = self.rvalue(expr.rhs)
        return self._apply_binary(op, lhs, rhs, expr.line)

    def _apply_binary(self, op: str, lhs: Value, rhs: Value, line: int) -> Value:
        # Pointer arithmetic.
        if op in ("+", "-") and (lhs.type.is_pointer or rhs.type.is_pointer):
            return self._pointer_arith(op, lhs, rhs, line)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return self._compare(op, lhs, rhs, line)
        lhs, rhs, common = self._usual_conversions(lhs, rhs, line)
        if common.is_float:
            mapping = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}
            if op not in mapping:
                raise SemanticError(f"line {line}: {op!r} not valid on floats")
            return self.builder.binop(mapping[op], lhs, rhs)
        mapping = {
            "+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem",
            "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "ashr",
        }
        if op not in mapping:
            raise SemanticError(f"line {line}: unsupported operator {op!r}")
        return self.builder.binop(mapping[op], lhs, rhs)

    def _pointer_arith(self, op: str, lhs: Value, rhs: Value, line: int) -> Value:
        if lhs.type.is_pointer and rhs.type.is_pointer:
            if op != "-":
                raise SemanticError(f"line {line}: cannot add two pointers")
            elem = lhs.type.pointee  # type: ignore[union-attr]
            li = self.builder.cast("ptrtoint", lhs, I32)
            ri = self.builder.cast("ptrtoint", rhs, I32)
            diff = self.builder.sub(li, ri)
            return self.builder.sdiv(diff, IRBuilder.const_int(elem.size()))
        if rhs.type.is_pointer:  # i + p
            lhs, rhs = rhs, lhs
        index = self._to_int(rhs, line)
        if op == "-":
            index = self.builder.sub(IRBuilder.const_int(0), index)
        return self.builder.gep(lhs, [index])

    def _compare(self, op: str, lhs: Value, rhs: Value, line: int) -> Value:
        pred_map = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle", ">": "sgt", ">=": "sge"}
        if lhs.type.is_pointer or rhs.type.is_pointer:
            ptr_type = lhs.type if lhs.type.is_pointer else rhs.type
            lhs = self._coerce_pointer(lhs, ptr_type, line)
            rhs = self._coerce_pointer(rhs, ptr_type, line)
            pred = pred_map[op].replace("s", "u", 1) if op in ("<", "<=", ">", ">=") else pred_map[op]
            return self.builder.icmp(pred, lhs, rhs)
        lhs, rhs, common = self._usual_conversions(lhs, rhs, line)
        if common.is_float:
            fpred = {"==": "oeq", "!=": "one", "<": "olt", "<=": "ole", ">": "ogt", ">=": "oge"}
            return self.builder.fcmp(fpred[op], lhs, rhs)
        return self.builder.icmp(pred_map[op], lhs, rhs)

    def _coerce_pointer(self, value: Value, ptr_type: Type, line: int) -> Value:
        if value.type == ptr_type:
            return value
        if value.type.is_pointer:
            return self.builder.cast("bitcast", value, ptr_type)
        if isinstance(value, Constant) and value.value == 0:
            return IRBuilder.null(ptr_type)
        raise SemanticError(f"line {line}: cannot compare pointer with non-pointer")

    def _lower_short_circuit(self, expr: ast.BinaryExpr) -> Value:
        is_and = expr.op == "&&"
        rhs_block = self.function.new_block("sc.rhs")
        merge = self.function.new_block("sc.end")
        lhs_cond = self.condition(expr.lhs)
        lhs_end = self.builder.block
        if is_and:
            self.builder.cond_branch(lhs_cond, rhs_block, merge)
        else:
            self.builder.cond_branch(lhs_cond, merge, rhs_block)
        self.builder.set_block(rhs_block)
        rhs_cond = self.condition(expr.rhs)
        rhs_end = self.builder.block
        self.builder.jump(merge)
        self.builder.set_block(merge)
        phi = self.builder.phi(BOOL)
        phi.add_incoming(IRBuilder.const_bool(not is_and), lhs_end)
        phi.add_incoming(rhs_cond, rhs_end)
        return phi

    def _lower_conditional(self, expr: ast.ConditionalExpr) -> Value:
        then_block = self.function.new_block("sel.then")
        else_block = self.function.new_block("sel.else")
        merge = self.function.new_block("sel.end")
        self.builder.cond_branch(self.condition(expr.cond), then_block, else_block)
        self.builder.set_block(then_block)
        tv = self.rvalue(expr.if_true)
        then_end = self.builder.block
        self.builder.set_block(else_block)
        fv = self.rvalue(expr.if_false)
        else_end = self.builder.block
        # Unify arm types before the merge so the phi is well-typed.
        if tv.type != fv.type:
            common = _common_type(tv.type, fv.type)
            if common is None:
                raise SemanticError(f"line {expr.line}: incompatible ?: arm types")
            self.builder.set_block(then_end)
            tv = self.convert(tv, common, expr.line)
            then_end = self.builder.block
            self.builder.set_block(else_end)
            fv = self.convert(fv, common, expr.line)
            else_end = self.builder.block
        self.builder.set_block(then_end)
        self.builder.jump(merge)
        self.builder.set_block(else_end)
        self.builder.jump(merge)
        self.builder.set_block(merge)
        phi = self.builder.phi(tv.type)
        phi.add_incoming(tv, then_end)
        phi.add_incoming(fv, else_end)
        return phi

    def _lower_assign(self, expr: ast.AssignExpr) -> Value:
        addr = self.lvalue(expr.lhs)
        target_type = addr.type.pointee  # type: ignore[union-attr]
        if expr.op == "=":
            value = self.convert(self.rvalue(expr.rhs), target_type, expr.line)
        else:
            binop = expr.op[:-1]  # '+=' -> '+'
            old = self.builder.load(addr)
            rhs = self.rvalue(expr.rhs)
            combined = self._apply_binary(binop, old, rhs, expr.line)
            value = self.convert(combined, target_type, expr.line)
        self.builder.store(value, addr)
        return value

    def _lower_call(self, expr: ast.CallExpr) -> Value:
        if expr.name not in self.module.functions:
            raise SemanticError(f"line {expr.line}: call to undeclared {expr.name!r}")
        callee = self.module.get_function(expr.name)
        params = callee.function_type.param_types
        if len(expr.args) != len(params):
            raise SemanticError(
                f"line {expr.line}: {expr.name} expects {len(params)} args, "
                f"got {len(expr.args)}"
            )
        args = [
            self.convert(self.rvalue(a), t, expr.line)
            for a, t in zip(expr.args, params)
        ]
        return self.builder.call(callee, args)

    # -- conversions ------------------------------------------------------------------

    def condition(self, expr: ast.Node) -> Value:
        return self.as_condition(self.rvalue(expr))

    def as_condition(self, value: Value) -> Value:
        if value.type == BOOL:
            return value
        if value.type.is_integer:
            return self.builder.icmp("ne", value, IRBuilder.const_int(0, value.type))
        if value.type.is_float:
            return self.builder.fcmp("one", value, IRBuilder.const_float(0.0, value.type))
        if value.type.is_pointer:
            return self.builder.icmp("ne", value, IRBuilder.null(value.type))
        raise SemanticError(f"cannot use {value.type!r} as a condition")

    def _promote_int(self, value: Value) -> Value:
        """C integer promotion: anything narrower than int becomes int."""
        if isinstance(value.type, IntType) and value.type.bits < 32:
            return self.builder.int_cast(value, I32)
        return value

    def _to_int(self, value: Value, line: int) -> Value:
        if not value.type.is_integer:
            raise SemanticError(f"line {line}: expected an integer")
        return self.builder.int_cast(self._promote_int(value), I32)

    def _usual_conversions(self, lhs: Value, rhs: Value, line: int):
        lhs = self._promote_int(lhs)
        rhs = self._promote_int(rhs)
        common = _common_type(lhs.type, rhs.type)
        if common is None:
            raise SemanticError(
                f"line {line}: incompatible operand types "
                f"{lhs.type!r} and {rhs.type!r}"
            )
        return self.convert(lhs, common, line), self.convert(rhs, common, line), common

    def convert(
        self, value: Value, target: Type, line: int, explicit: bool = False
    ) -> Value:
        """Implicit (or explicit, for casts) conversion to ``target``."""
        source = value.type
        if source == target:
            return value
        if target.is_void:
            return value  # value discarded (cast to void)
        if isinstance(source, IntType) and isinstance(target, IntType):
            return self.builder.int_cast(value, target)
        if isinstance(source, IntType) and isinstance(target, FloatType):
            widened = self._promote_int(value)
            return self.builder.cast("sitofp", widened, target)
        if isinstance(source, FloatType) and isinstance(target, IntType):
            return self.builder.cast("fptosi", value, target)
        if isinstance(source, FloatType) and isinstance(target, FloatType):
            op = "fpext" if target.size() > source.size() else "fptrunc"
            return self.builder.cast(op, value, target)
        if source.is_pointer and target.is_pointer:
            return self.builder.cast("bitcast", value, target)
        if isinstance(source, IntType) and target.is_pointer:
            if isinstance(value, Constant) and value.value == 0:
                return IRBuilder.null(target)
            if explicit:
                return self.builder.cast("inttoptr", value, target)
        if source.is_pointer and isinstance(target, IntType) and explicit:
            return self.builder.cast("ptrtoint", value, target)
        raise SemanticError(
            f"line {line}: cannot convert {source!r} to {target!r}"
        )


def _common_type(a: Type, b: Type) -> Type | None:
    """C usual-arithmetic-conversion result type (or pointer unification)."""
    if a == b:
        return a
    if a.is_pointer and isinstance(b, IntType):
        return a
    if b.is_pointer and isinstance(a, IntType):
        return b
    if isinstance(a, FloatType) or isinstance(b, FloatType):
        fa = a if isinstance(a, FloatType) else None
        fb = b if isinstance(b, FloatType) else None
        if fa and fb:
            return fa if fa.bits >= fb.bits else fb
        if (fa or fb) and (isinstance(a, IntType) or isinstance(b, IntType)):
            return fa or fb
        return None
    if isinstance(a, IntType) and isinstance(b, IntType):
        return a if a.bits >= b.bits else b
    return None


def _zero_of(type_: Type) -> Constant:
    if type_.is_float:
        return Constant(type_, 0.0)
    return Constant(type_, 0)
