"""Verilog code generation from scheduled FSMs.

Emits one synthesizable-style module per worker function: a state-machine
``always`` block, per-instruction result registers, a memory-port
handshake (request/ack, matching the cache crossbar of Fig. 2), and FIFO
push/pop handshakes for the CGPA primitives.  Floating-point operations
call operator cores (``fp_add_64`` etc.) that synthesis maps to vendor
IP; the co-simulator (:mod:`repro.vsim`) provides bit-exact models of
them, so the emitted module is *executable*, not just printable.

Protocol contract (checked by :mod:`repro.vsim.cosim` against the
functional interpreter oracle):

* memory — the module holds ``mem_req`` high with ``mem_addr``,
  ``mem_we``/``mem_wdata`` and ``mem_size`` (access width in bytes)
  stable until the environment pulses ``mem_ack``; read data is sampled
  on the ack edge.
* FIFO — registered valid/ready: a push or pop transfers on the clock
  edge where both ``valid`` and ``ready`` are sampled high, after which
  the module drops ``valid`` and advances.  ``*_sel`` packs
  ``{channel_id[3:0], worker_index[3:0]}``.
* call — submodules are instantiated; the caller pulses the callee's
  ``start``, parks until ``finish``, and samples the 64-bit ``result``
  port.  Callee memory ports are muxed onto the caller's port (only one
  requester is ever active, because the caller parks during the call).
"""

from __future__ import annotations

from ..errors import CgpaError
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    GEP,
    Alloca,
    BinaryOp,
    Call,
    Cast,
    CondBranch,
    Consume,
    FCmp,
    ICmp,
    Instruction,
    Jump,
    Load,
    ParallelFork,
    ParallelJoin,
    Phi,
    Produce,
    ProduceBroadcast,
    Ret,
    RetrieveLiveout,
    Select,
    Store,
    StoreLiveout,
)
from ..ir.types import FloatType, Type
from ..ir.values import Argument, Constant, GlobalVariable, Value
from .resources import is_blocking
from .schedule import FunctionSchedule, schedule_function

_BINOP_VERILOG = {
    "add": "+", "sub": "-", "mul": "*",
    "and": "&", "or": "|", "xor": "^",
    "shl": "<<", "lshr": ">>",
    "udiv": "/", "urem": "%",
}
#: Signed binops: both operands are wrapped in ``$signed`` so the
#: Verilog expression uses signed division/remainder/arithmetic shift.
_SIGNED_BINOP_VERILOG = {"ashr": ">>>", "sdiv": "/", "srem": "%"}
_ICMP_VERILOG = {
    "eq": "==", "ne": "!=", "slt": "<", "sle": "<=", "sgt": ">", "sge": ">=",
    "ult": "<", "ule": "<=", "ugt": ">", "uge": ">=",
}
_FP_CORES = {
    "fadd": "fp_add", "fsub": "fp_sub", "fmul": "fp_mul", "fdiv": "fp_div",
}
#: Cast opcodes that are pure wiring (latency 0 in the schedule): emitted
#: as continuous assigns, not registers.
_WIRE_CASTS = {"trunc", "zext", "sext", "bitcast", "ptrtoint", "inttoptr"}
#: Static scratchpad base for ``alloca`` slots (outside the heap image).
_SCRATCH_BASE = 0x00F0_0000


def _width(type_: Type) -> int:
    if type_.is_void:
        return 1
    return max(8 * type_.size(), 1)


class _Names:
    """Stable Verilog identifiers per value."""

    def __init__(self, reserved: set[str] | None = None) -> None:
        self._names: dict[int, str] = {}
        self._used: set[str] = set(reserved or ())
        self._counter = 0

    def of(self, value: Value) -> str:
        if isinstance(value, Constant):
            if value.type.is_float:
                bits = 64 if value.type.bits == 64 else 32
                return f"{bits}'h{_float_bits(float(value.value), bits):0{bits // 4}x}"
            width = _width(value.type)
            return f"{width}'d{int(value.value) & ((1 << width) - 1)}"
        if isinstance(value, GlobalVariable):
            return f"GLOBAL_{_sanitize(value.name).upper()}"
        if isinstance(value, Argument):
            return f"arg_{_sanitize(value.name)}"  # matches the port name
        key = id(value)
        if key not in self._names:
            base = value.name or f"v{self._counter}"
            candidate = _sanitize(base)
            while candidate in self._used:
                self._counter += 1
                candidate = f"{_sanitize(base)}_{self._counter}"
            self._used.add(candidate)
            self._names[key] = candidate
            self._counter += 1
        return self._names[key]


def _sanitize(name: str) -> str:
    out = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if not out or out[0].isdigit():
        out = "r_" + out
    return out


def _float_bits(value: float, bits: int = 64) -> int:
    import struct

    if bits == 32:
        return int.from_bytes(struct.pack("<f", value), "little")
    return int.from_bytes(struct.pack("<d", value), "little")


#: Identifiers every module owns; user values must not shadow them.
_RESERVED = {
    "clk", "rst", "start", "finish", "state", "result",
    "mem_req", "mem_we", "mem_addr", "mem_wdata", "mem_rdata", "mem_ack",
    "mem_size", "mem_req_o", "mem_we_o", "mem_addr_o", "mem_wdata_o",
    "mem_size_o",
    "fifo_push_data", "fifo_push_sel", "fifo_push_valid", "fifo_push_ready",
    "fifo_pop_data", "fifo_pop_sel", "fifo_pop_valid", "fifo_pop_ready",
}


def generate_verilog(
    function: Function, schedule: FunctionSchedule | None = None
) -> str:
    """Emit the Verilog module for one worker function."""
    schedule = schedule or schedule_function(function)
    aux = _collect_aux_signals(function)
    names = _Names(reserved=set(_RESERVED))
    ws_wires, ws_decls = _worker_select_wires(function, names)
    lines: list[str] = []
    emit = lines.append

    module_name = _sanitize(function.name)
    emit(f"// Generated by CGPA for @{function.name}")
    emit(f"module {module_name} (")

    # With submodule instances the memory port is a mux of the caller's
    # own request and the callees' — so it becomes a wire, not a reg.
    mem_kind = "wire" if aux.callees else "reg "
    ports: list[str] = [
        "    input  wire        clk",
        "    input  wire        rst",
        "    input  wire        start",
        "    output reg         finish",
    ]
    if not function.function_type.return_type.is_void:
        ports.append("    output reg  [63:0] result")
    for arg in function.args:
        ports.append(
            f"    input  wire [{_width(arg.type)-1}:0] arg_{_sanitize(arg.name)}"
        )
    for lid in sorted(aux.liveout_inputs):
        ports.append(f"    input  wire [63:0] liveout_{lid}")
    ports += [
        "    // memory port (request/response crossbar)",
        f"    output {mem_kind}        mem_req",
        f"    output {mem_kind}        mem_we",
        f"    output {mem_kind} [31:0] mem_addr",
        f"    output {mem_kind} [63:0] mem_wdata",
        f"    output {mem_kind} [3:0]  mem_size",
        "    input  wire [63:0] mem_rdata",
        "    input  wire        mem_ack",
        "    // FIFO buffers",
        "    output reg  [63:0] fifo_push_data",
        "    output reg  [7:0]  fifo_push_sel",
        "    output reg         fifo_push_valid",
        "    input  wire        fifo_push_ready",
        "    input  wire [63:0] fifo_pop_data",
        "    output reg  [7:0]  fifo_pop_sel",
        "    output reg         fifo_pop_valid",
        "    input  wire        fifo_pop_ready",
    ]
    for task_name in sorted(aux.fork_tasks):
        ports.append(f"    output reg         task_start_{task_name}")
    for loop_id in sorted(aux.join_loops):
        ports.append(
            f"    input  wire        all_finished_loop{loop_id}"
        )
    for i, port in enumerate(ports):
        comma = "," if i + 1 < len(ports) else ""
        if port.lstrip().startswith("//"):
            emit(port)
        else:
            emit(port + comma)
    emit(");")
    emit("")

    # Global state numbering: (block, local state) -> global id.
    state_ids: dict[tuple[int, int], int] = {}
    counter = 1  # 0 is IDLE
    for block in function.blocks:
        bs = schedule.block_schedule(block)
        for local in range(bs.n_states):
            state_ids[(id(block), local)] = counter
            counter += 1
    n_states = counter
    state_bits = max((n_states - 1).bit_length(), 1)
    emit(f"    localparam STATE_IDLE = {state_bits}'d0;")
    for block in function.blocks:
        bs = schedule.block_schedule(block)
        for local in range(bs.n_states):
            sid = state_ids[(id(block), local)]
            emit(
                f"    localparam S_{_sanitize(block.short_name()).upper()}_{local} "
                f"= {state_bits}'d{sid};"
            )
    emit(f"    reg [{state_bits-1}:0] state;")
    emit("")

    for name in sorted(aux.globals_used):
        emit(f"    parameter GLOBAL_{name} = 32'd0; // filled at integration")

    # Result registers (registered ops) and cast wires (latency-0 ops).
    wire_casts: list[Cast] = []
    for inst in function.instructions():
        if inst.type.is_void:
            continue
        if isinstance(inst, Cast) and inst.opcode in _WIRE_CASTS:
            wire_casts.append(inst)
            emit(f"    wire [{_width(inst.type)-1}:0] {names.of(inst)};")
        else:
            emit(f"    reg [{_width(inst.type)-1}:0] {names.of(inst)};")
    emit("")

    for lid in sorted(aux.liveout_stores):
        emit(f"    reg [63:0] liveout_{lid};")
    for callee in aux.callees:
        cname = _sanitize(callee.name)
        emit(f"    reg         callee_start_{cname};")
        emit(f"    reg         callee_issued_{cname};")
        emit(f"    wire        callee_finish_{cname};")
        if not callee.function_type.return_type.is_void:
            emit(f"    wire [63:0] callee_result_{cname};")
        for formal in callee.args:
            emit(
                f"    reg [{_width(formal.type)-1}:0] "
                f"callee_arg_{cname}_{_sanitize(formal.name)};"
            )
        emit(f"    wire        callee_mem_req_{cname};")
        emit(f"    wire        callee_mem_we_{cname};")
        emit(f"    wire [31:0] callee_mem_addr_{cname};")
        emit(f"    wire [63:0] callee_mem_wdata_{cname};")
        emit(f"    wire [3:0]  callee_mem_size_{cname};")
    if aux.callees:
        if aux.has_own_mem_ops:
            emit("    reg         mem_req_o;")
            emit("    reg         mem_we_o;")
            emit("    reg  [31:0] mem_addr_o;")
            emit("    reg  [63:0] mem_wdata_o;")
            emit("    reg  [3:0]  mem_size_o;")
        emit("")
        _emit_mem_mux(emit, aux)
    if aux.callees or aux.liveout_stores:
        emit("")

    # Latency-0 casts are pure wiring.
    for inst in wire_casts:
        emit(f"    assign {names.of(inst)} = {_cast_expr(inst, names)};")
    allocas = [i for i in function.instructions() if isinstance(i, Alloca)]
    for slot, inst in enumerate(allocas):
        # Static scratchpad: one slot per alloca site, above the heap.
        addr = _SCRATCH_BASE + 64 * slot
        emit(f"    wire [31:0] {names.of(inst)};")
        emit(f"    assign {names.of(inst)} = 32'd{addr}; // scratchpad slot")
    # Dynamic worker selects are reduced mod n_channels, matching the
    # `ws % n_channels` indexing of every software execution layer.
    for line in ws_decls:
        emit(line)
    if wire_casts or allocas or ws_decls:
        emit("")

    # Submodule instances for direct callees.
    for callee in aux.callees:
        _emit_instance(emit, callee, _collect_aux_signals(callee))

    ctx = _EmitCtx(
        names=names, function=function, schedule=schedule,
        state_ids=state_ids, state_bits=state_bits, aux=aux,
        ws_wires=ws_wires,
    )

    emit("    always @(posedge clk) begin")
    emit("        if (rst) begin")
    emit("            state <= STATE_IDLE;")
    emit("            finish <= 1'b0;")
    if not aux.callees or aux.has_own_mem_ops:
        # mem_req_o only exists when this module issues its own
        # memory requests (with callees the port itself is a mux wire).
        emit(f"            {ctx.mem('mem_req')} <= 1'b0;")
    emit("            fifo_push_valid <= 1'b0;")
    emit("            fifo_pop_valid <= 1'b0;")
    for callee in aux.callees:
        cname = _sanitize(callee.name)
        emit(f"            callee_start_{cname} <= 1'b0;")
        emit(f"            callee_issued_{cname} <= 1'b0;")
    for task_name in sorted(aux.fork_tasks):
        emit(f"            task_start_{task_name} <= 1'b0;")
    emit("        end else begin")
    emit("            case (state)")
    emit("                STATE_IDLE: begin")
    emit("                    if (start) begin")
    emit("                        finish <= 1'b0;")
    entry_state = state_ids[(id(function.entry), 0)]
    emit(f"                        state <= {state_bits}'d{entry_state};")
    emit("                    end")
    emit("                end")

    for block in function.blocks:
        bs = schedule.block_schedule(block)
        for local in range(bs.n_states):
            label = f"S_{_sanitize(block.short_name()).upper()}_{local}"
            emit(f"                {label}: begin")
            _emit_state(emit, ctx, block, bs, local)
            emit("                end")

    emit("                default: state <= STATE_IDLE;")
    emit("            endcase")
    emit("        end")
    emit("    end")
    emit("")
    emit("endmodule")
    return "\n".join(lines) + "\n"


def generate_verilog_hierarchy(function: Function) -> str:
    """Emit ``function``'s module plus every transitive callee module."""
    ordered: list[Function] = []
    seen: set[int] = set()

    def visit(fn: Function) -> None:
        if id(fn) in seen:
            return
        seen.add(id(fn))
        ordered.append(fn)
        for callee in _collect_aux_signals(fn).callees:
            visit(callee)

    visit(function)
    return "\n".join(generate_verilog(fn) for fn in ordered)


class _AuxSignals:
    """Signals a module needs beyond its datapath registers."""

    def __init__(self) -> None:
        self.liveout_stores: set[int] = set()
        self.liveout_retrieves: set[int] = set()
        self.callees: _FunctionSet = _FunctionSet()
        self.fork_tasks: set[str] = set()
        self.join_loops: set[int] = set()
        self.globals_used: set[str] = set()
        self.has_own_mem_ops = False
        self.has_alloca = False

    @property
    def liveout_inputs(self) -> set[int]:
        """Live-outs this module reads but never writes: input ports."""
        return self.liveout_retrieves - self.liveout_stores

    @property
    def liveout_ids(self) -> set[int]:
        return self.liveout_stores | self.liveout_retrieves


class _FunctionSet:
    """Set of Function objects, deduplicated and sorted by name."""

    def __init__(self) -> None:
        self._by_name: dict[str, Function] = {}

    def add(self, fn: Function) -> None:
        self._by_name[fn.name] = fn

    def __iter__(self):
        return iter(
            self._by_name[name] for name in sorted(self._by_name)
        )

    def __bool__(self) -> bool:
        return bool(self._by_name)

    def __len__(self) -> int:
        return len(self._by_name)


def _collect_aux_signals(function: Function) -> _AuxSignals:
    aux = _AuxSignals()
    for inst in function.instructions():
        if isinstance(inst, StoreLiveout):
            aux.liveout_stores.add(inst.liveout_id)
        elif isinstance(inst, RetrieveLiveout):
            aux.liveout_retrieves.add(inst.liveout_id)
        elif isinstance(inst, Call) and not inst.callee.is_declaration:
            aux.callees.add(inst.callee)
        elif isinstance(inst, ParallelFork):
            aux.fork_tasks.add(_sanitize(inst.task.name))
        elif isinstance(inst, ParallelJoin):
            aux.join_loops.add(inst.loop_id)
        elif isinstance(inst, (Load, Store)):
            aux.has_own_mem_ops = True
        elif isinstance(inst, Alloca):
            aux.has_alloca = True
        for op in inst.operands:
            if isinstance(op, GlobalVariable):
                aux.globals_used.add(_sanitize(op.name).upper())
    # Callees' global parameters are forwarded through this module, so
    # it must declare them too (transitively).
    for callee in aux.callees:
        aux.globals_used |= _collect_aux_signals(callee).globals_used
    return aux


def _emit_mem_mux(emit, aux: _AuxSignals) -> None:
    """Mux the callees' memory ports onto this module's port."""
    callees = [_sanitize(c.name) for c in aux.callees]
    req_terms = [f"callee_mem_req_{c}" for c in callees]
    if aux.has_own_mem_ops:
        req_terms.append("mem_req_o")
    emit(f"    assign mem_req = {' | '.join(req_terms)};")
    for field, own, width in (
        ("we", "mem_we_o", ""), ("addr", "mem_addr_o", ""),
        ("wdata", "mem_wdata_o", ""), ("size", "mem_size_o", ""),
    ):
        default = own if aux.has_own_mem_ops else (
            "1'b0" if field == "we" else
            "32'd0" if field == "addr" else
            "64'd0" if field == "wdata" else "4'd0"
        )
        expr = default
        for c in reversed(callees):
            expr = f"callee_mem_req_{c} ? callee_mem_{field}_{c} : {expr}"
        emit(f"    assign mem_{field} = {expr};")


def _emit_instance(emit, callee: Function, callee_aux: _AuxSignals) -> None:
    cname = _sanitize(callee.name)
    overrides = sorted(callee_aux.globals_used)
    if overrides:
        emit(f"    {cname} #(")
        for i, g in enumerate(overrides):
            comma = "," if i + 1 < len(overrides) else ""
            emit(f"        .GLOBAL_{g}(GLOBAL_{g}){comma}")
        emit(f"    ) u_{cname} (")
    else:
        emit(f"    {cname} u_{cname} (")
    emit("        .clk(clk), .rst(rst),")
    emit(f"        .start(callee_start_{cname}),")
    emit(f"        .finish(callee_finish_{cname}),")
    if not callee.function_type.return_type.is_void:
        emit(f"        .result(callee_result_{cname}),")
    for formal in callee.args:
        fname = _sanitize(formal.name)
        emit(f"        .arg_{fname}(callee_arg_{cname}_{fname}),")
    emit(f"        .mem_req(callee_mem_req_{cname}),")
    emit(f"        .mem_we(callee_mem_we_{cname}),")
    emit(f"        .mem_addr(callee_mem_addr_{cname}),")
    emit(f"        .mem_wdata(callee_mem_wdata_{cname}),")
    emit(f"        .mem_size(callee_mem_size_{cname}),")
    emit("        .mem_rdata(mem_rdata), .mem_ack(mem_ack),")
    emit("        .fifo_push_data(), .fifo_push_sel(), .fifo_push_valid(),")
    emit("        .fifo_push_ready(1'b0),")
    emit("        .fifo_pop_data(64'd0), .fifo_pop_sel(), .fifo_pop_valid(),")
    emit("        .fifo_pop_ready(1'b0)")
    emit("    );")
    emit("")


class _EmitCtx:
    """Everything `_emit_state` needs, bundled."""

    def __init__(
        self, names, function, schedule, state_ids, state_bits, aux,
        ws_wires=None,
    ):
        self.names = names
        self.function = function
        self.schedule = schedule
        self.state_ids = state_ids
        self.state_bits = state_bits
        self.aux = aux
        self.ws_wires = ws_wires or {}

    def mem(self, base: str) -> str:
        """Own-memory signal name (muxed through *_o with callees)."""
        return base + "_o" if self.aux.callees else base


def _emit_state(emit, ctx: _EmitCtx, block, bs, local: int) -> None:
    """Emit the body of one FSM state.

    The state's potentially-stalling op (memory, FIFO, call, join) — if
    any — controls advancement: the jump to the next state (or the
    terminator's actions, when the scheduler co-located it) only fires in
    its success arm, so a stalled handshake replays the state without
    advancing.  Pure data ops re-execute idempotently on replay.
    """
    ops = bs.ops_in_state(local)
    terminator = next((op for op in ops if op.is_terminator), None)
    blocker = next(
        (op for op in ops
         if is_blocking(op) or isinstance(op, (Call, ParallelJoin))),
        None,
    )

    def pad(text: str, depth: int = 0) -> None:
        emit("                    " + "    " * depth + text)

    for inst in ops:
        if inst is blocker or inst is terminator:
            continue
        _emit_data_op(pad, inst, ctx)

    if terminator is not None:
        advance = _terminator_actions(terminator, ctx)
    else:
        if local + 1 < bs.n_states:
            nxt = ctx.state_ids[(id(block), local + 1)]
        else:
            nxt = ctx.state_ids[(id(block), local)]  # defensive stay
        advance = [f"state <= {ctx.state_bits}'d{nxt};"]

    if blocker is not None:
        _emit_blocker(pad, blocker, ctx, advance)
    else:
        for line in advance:
            pad(line)


def _terminator_actions(inst: Instruction, ctx: _EmitCtx) -> list[str]:
    """Lines performed when the block's terminator fires."""
    n = ctx.names.of
    if isinstance(inst, Jump):
        lines = _phi_updates(inst.parent, inst.target, ctx)
        target = ctx.state_ids[(id(inst.target), 0)]
        lines.append(f"state <= {ctx.state_bits}'d{target};")
        return lines
    if isinstance(inst, CondBranch):
        t_lines = _phi_updates(inst.parent, inst.if_true, ctx)
        t_state = ctx.state_ids[(id(inst.if_true), 0)]
        t_lines.append(f"state <= {ctx.state_bits}'d{t_state};")
        f_lines = _phi_updates(inst.parent, inst.if_false, ctx)
        f_state = ctx.state_ids[(id(inst.if_false), 0)]
        f_lines.append(f"state <= {ctx.state_bits}'d{f_state};")
        out = [f"if ({n(inst.cond)}) begin"]
        out += ["    " + line for line in t_lines]
        out.append("end else begin")
        out += ["    " + line for line in f_lines]
        out.append("end")
        return out
    if isinstance(inst, Ret):
        lines = []
        if inst.value is not None:
            lines.append(f"result <= {n(inst.value)};")
        lines.append("finish <= 1'b1;")
        lines.append("state <= STATE_IDLE;")
        return lines
    raise CgpaError(f"verilog: unsupported terminator {inst.opcode}")


def _phi_updates(source: BasicBlock, target: BasicBlock, ctx) -> list[str]:
    """Nonblocking phi-register updates for the edge source -> target.

    Nonblocking semantics make the updates a parallel assignment, so
    mutually-referencing phis (a swap) resolve correctly.
    """
    n = ctx.names.of
    return [
        f"{n(phi)} <= {n(phi.incoming_for(source))};"
        for phi in target.phis()
    ]


def _emit_blocker(pad, inst: Instruction, ctx: _EmitCtx, advance: list[str]):
    """Emit a potentially-stalling op; ``advance`` runs on its success."""
    n = ctx.names.of
    W = _width(inst.type)

    def success(extra: list[str]) -> None:
        for line in extra + advance:
            pad(line, 1)

    if isinstance(inst, Load):
        pad(f"{ctx.mem('mem_req')} <= 1'b1;")
        pad(f"{ctx.mem('mem_we')} <= 1'b0;")
        pad(f"{ctx.mem('mem_addr')} <= {n(inst.pointer)};")
        pad(f"{ctx.mem('mem_size')} <= 4'd{inst.type.size()};")
        pad("if (mem_ack) begin")
        success([
            f"{n(inst)} <= mem_rdata[{W-1}:0];",
            f"{ctx.mem('mem_req')} <= 1'b0;",
        ])
        pad("end")
        return
    if isinstance(inst, Store):
        pad(f"{ctx.mem('mem_req')} <= 1'b1;")
        pad(f"{ctx.mem('mem_we')} <= 1'b1;")
        pad(f"{ctx.mem('mem_addr')} <= {n(inst.pointer)};")
        pad(f"{ctx.mem('mem_wdata')} <= {n(inst.value)};")
        pad(f"{ctx.mem('mem_size')} <= 4'd{inst.value.type.size()};")
        pad("if (mem_ack) begin")
        success([f"{ctx.mem('mem_req')} <= 1'b0;"])
        pad("end")
        return
    if isinstance(inst, (Produce, ProduceBroadcast)):
        sel = _fifo_sel(inst, ctx)
        pad("fifo_push_valid <= 1'b1;")
        pad(f"fifo_push_sel <= {sel};"
            + (" // broadcast" if isinstance(inst, ProduceBroadcast) else ""))
        pad(f"fifo_push_data <= {n(inst.value)};")
        pad("if (fifo_push_valid && fifo_push_ready) begin")
        success(["fifo_push_valid <= 1'b0;"])
        pad("end")
        return
    if isinstance(inst, Consume):
        sel = _fifo_sel(inst, ctx)
        pad("fifo_pop_valid <= 1'b1;")
        pad(f"fifo_pop_sel <= {sel};")
        pad("if (fifo_pop_valid && fifo_pop_ready) begin")
        success([
            f"{n(inst)} <= fifo_pop_data[{W-1}:0];",
            "fifo_pop_valid <= 1'b0;",
        ])
        pad("end")
        return
    if isinstance(inst, ParallelJoin):
        pad(f"if (all_finished_loop{inst.loop_id}) begin")
        success([])
        pad("end")
        return
    if isinstance(inst, Call):
        cname = _sanitize(inst.callee.name)
        pad(f"// call @{inst.callee.name} (submodule)")
        pad(f"if (!callee_issued_{cname}) begin")
        for formal, actual in zip(inst.callee.args, inst.args):
            fname = _sanitize(formal.name)
            pad(f"callee_arg_{cname}_{fname} <= {n(actual)};", 1)
        pad(f"callee_start_{cname} <= 1'b1;", 1)
        pad(f"callee_issued_{cname} <= 1'b1;", 1)
        pad("end else begin")
        pad(f"callee_start_{cname} <= 1'b0;", 1)
        # !start guards against the callee's stale finish from a
        # previous invocation (it clears finish one cycle after start).
        pad(f"if (callee_finish_{cname} && !callee_start_{cname}) begin", 1)
        extra = [f"callee_issued_{cname} <= 1'b0;"]
        if not inst.type.is_void:
            extra.append(f"{n(inst)} <= callee_result_{cname}[{W-1}:0];")
        for line in extra + advance:
            pad(line, 2)
        pad("end", 1)
        pad("end")
        return
    raise CgpaError(f"verilog: unsupported blocking op {inst.opcode}")


def _worker_select_wires(function: Function, names: _Names):
    """Per-site select wires reducing dynamic worker selects mod n_channels.

    Every software execution layer indexes FIFO channels with
    ``worker_select % n_channels``; the hardware mirrors that with a
    dedicated ``assign ws_sel_N = value % n_channels`` wire per produce /
    consume site whose select is not a compile-time constant.  Returns
    ``({id(inst): wire_name}, decl_lines)``.
    """
    sites: list[tuple[Instruction, Value | str]] = []
    for inst in function.instructions():
        if isinstance(inst, ProduceBroadcast):
            continue
        if isinstance(inst, Produce):
            ws = inst.worker_select
        elif isinstance(inst, Consume):
            ws = inst.worker_select
            if ws is None:
                if any(a.name == "worker_id" for a in function.args):
                    ws = "arg_worker_id"
                else:
                    continue
        else:
            continue
        if isinstance(ws, Constant):
            continue
        sites.append((inst, ws))
    # Reserve all wire names before any datapath value is named, so an IR
    # value that happens to be called ws_sel_0 cannot collide.
    wire_names = [f"ws_sel_{i}" for i in range(len(sites))]
    names._used.update(wire_names)
    ws_wires: dict[int, str] = {}
    decls: list[str] = []
    for wname, (inst, ws) in zip(wire_names, sites):
        ws_wires[id(inst)] = wname
        if isinstance(ws, str):  # the worker_id port, 32-bit
            operand, width = ws, 32
        else:
            operand, width = names.of(ws), _width(ws.type)
        decls.append(f"    wire [{width-1}:0] {wname};")
        decls.append(
            f"    assign {wname} = {operand} % {width}'d{inst.channel.n_channels};"
        )
    return ws_wires, decls


def _fifo_sel(inst: Instruction, ctx) -> str:
    """The 8-bit FIFO select: {channel_id[3:0], worker_index[3:0]}."""
    channel = inst.channel
    if channel.channel_id > 15:
        raise CgpaError(
            f"verilog: channel id {channel.channel_id} exceeds 4 bits"
        )
    base = channel.channel_id << 4
    if isinstance(inst, ProduceBroadcast):
        return f"8'h{base | 0xF:02x} /* ch {channel.channel_id} */"
    wire = ctx.ws_wires.get(id(inst))
    if wire is not None:
        return f"{{4'd{channel.channel_id}, {wire}[3:0]}}"
    ws = inst.worker_select
    if isinstance(ws, Constant):
        return f"8'h{base | (int(ws.value) % channel.n_channels):02x}"
    if ws is None:  # a consume on this stage's only channel
        return f"8'h{base:02x}"
    raise CgpaError("verilog: unexpected dynamic worker select")


def _emit_data_op(pad, inst: Instruction, ctx: _EmitCtx) -> None:
    """Emit a non-stalling op: an unconditional register update."""
    n = ctx.names.of
    if isinstance(inst, Phi):
        pad(f"// phi {n(inst)} latched on the incoming branch edge")
        return
    if isinstance(inst, Cast) and inst.opcode in _WIRE_CASTS:
        return  # continuous assign, emitted with the declarations
    if isinstance(inst, BinaryOp):
        if inst.opcode in _FP_CORES:
            bits = 64 if inst.type.bits == 64 else 32
            core = f"{_FP_CORES[inst.opcode]}_{bits}"
            pad(f"{n(inst)} <= {core}({n(inst.lhs)}, {n(inst.rhs)});")
        elif inst.opcode in _SIGNED_BINOP_VERILOG:
            op = _SIGNED_BINOP_VERILOG[inst.opcode]
            pad(
                f"{n(inst)} <= $signed({n(inst.lhs)}) {op} "
                f"$signed({n(inst.rhs)});"
            )
        else:
            op = _BINOP_VERILOG[inst.opcode]
            pad(f"{n(inst)} <= {n(inst.lhs)} {op} {n(inst.rhs)};")
        return
    if isinstance(inst, ICmp):
        op = _ICMP_VERILOG[inst.pred]
        # Pointers compare as unsigned addresses regardless of predicate.
        signed = not inst.pred.startswith("u") and not inst.lhs.type.is_pointer
        wrap = "$signed" if signed else ""
        pad(f"{n(inst)} <= {wrap}({n(inst.lhs)}) {op} {wrap}({n(inst.rhs)});")
        return
    if isinstance(inst, FCmp):
        bits = 64 if inst.lhs.type.bits == 64 else 32
        pad(f"{n(inst)} <= fp_cmp_{inst.pred}_{bits}({n(inst.lhs)}, {n(inst.rhs)});")
        return
    if isinstance(inst, GEP):
        pad(f"{n(inst)} <= {_gep_expr(inst, ctx.names)};")
        return
    if isinstance(inst, Cast):
        pad(f"{n(inst)} <= {_fp_cast_expr(inst, ctx.names)};")
        return
    if isinstance(inst, Select):
        c, t, f = inst.operands
        pad(f"{n(inst)} <= {n(c)} ? {n(t)} : {n(f)};")
        return
    if isinstance(inst, StoreLiveout):
        pad(f"liveout_{inst.liveout_id} <= {n(inst.value)}; // latch live-out")
        return
    if isinstance(inst, RetrieveLiveout):
        pad(f"{n(inst)} <= liveout_{inst.liveout_id}[{_width(inst.type)-1}:0];")
        return
    if isinstance(inst, ParallelFork):
        pad(f"task_start_{_sanitize(inst.task.name)} <= 1'b1; "
            f"// fork loop {inst.loop_id}")
        return
    if isinstance(inst, Alloca):
        return  # static scratchpad wire, emitted with the declarations
    raise CgpaError(f"verilog: unsupported opcode {inst.opcode}")


def _cast_expr(inst: Cast, names: _Names) -> str:
    """Continuous-assign RHS for a latency-0 integer cast."""
    src = names.of(inst.value)
    sw = _width(inst.value.type)
    dw = _width(inst.type)
    op = inst.opcode
    if op == "sext" and dw > sw:
        return f"{{{{{dw - sw}{{{src}[{sw-1}]}}}}, {src}}}"
    if dw < sw:
        return f"{src}[{dw-1}:0]"  # trunc / inttoptr narrowing
    return src  # zero-extend or same width


def _fp_cast_expr(inst: Cast, names: _Names) -> str:
    """Operator-core call for a floating-point cast (latency >= 1)."""
    src = names.of(inst.value)
    op = inst.opcode
    if op == "sitofp":
        bits = 64 if inst.type.bits == 64 else 32
        return f"fp_from_int_{bits}($signed({src}))"
    if op == "fptosi":
        bits = 64 if inst.value.type.bits == 64 else 32
        return f"fp_to_int_{bits}({src})"
    if op == "fpext":
        return f"fp_ext_32_64({src})"
    if op == "fptrunc":
        return f"fp_trunc_64_32({src})"
    raise CgpaError(f"verilog: unsupported cast {op}")


def _gep_expr(inst: GEP, names: _Names) -> str:
    pointee = inst.base.type.pointee  # type: ignore[union-attr]
    terms = [names.of(inst.base)]
    terms.append(f"({names.of(inst.indices[0])} * {pointee.size()})")
    current = pointee
    from ..ir.types import ArrayType, StructType

    for idx in inst.indices[1:]:
        if isinstance(current, StructType):
            field = int(idx.value)  # type: ignore[union-attr]
            terms.append(str(current.field_offset(field)))
            current = current.field_type(field)
        else:
            assert isinstance(current, ArrayType)
            terms.append(f"({names.of(idx)} * {current.element.size()})")
            current = current.element
    return " + ".join(terms)


def support_library() -> str:
    """The hardware circuit library backing the Table 1 primitives."""
    return """\
// CGPA support library: FIFO buffer and primitive cores (Section 3.4).
//
// Floating-point operator cores are vendor IP at synthesis time; the
// emitted modules call them as functions with bit-pattern arguments:
//   fp_add_64/fp_sub_64/fp_mul_64/fp_div_64 (and _32 variants)
//   fp_cmp_{oeq,one,olt,ole,ogt,oge}_{32,64}
//   fp_from_int_{32,64}, fp_to_int_{32,64}, fp_ext_32_64, fp_trunc_64_32
// The co-simulator (repro.vsim) provides bit-exact IEEE-754 models.
module cgpa_fifo #(
    parameter WIDTH = 64,
    parameter DEPTH = 16,
    parameter CHANNELS = 4
) (
    input  wire                 clk,
    input  wire                 rst,
    input  wire                 push_valid,
    input  wire [WIDTH-1:0]     push_data,
    input  wire [3:0]           push_sel,     // 4'hF = broadcast
    output wire                 push_ready,
    input  wire                 pop_valid,
    input  wire [3:0]           pop_sel,
    output wire [WIDTH-1:0]     pop_data,
    output wire                 pop_ready
);
    // One circular buffer per consumer channel.
    reg [WIDTH-1:0] mem [0:CHANNELS*DEPTH-1];
    reg [$clog2(DEPTH):0] count [0:CHANNELS-1];
    reg [$clog2(DEPTH)-1:0] head [0:CHANNELS-1];
    reg [$clog2(DEPTH)-1:0] tail [0:CHANNELS-1];
    integer i;

    wire broadcast = (push_sel == 4'hF);
    reg full_any;
    always @(*) begin
        full_any = 1'b0;
        for (i = 0; i < CHANNELS; i = i + 1)
            if (count[i] == DEPTH) full_any = 1'b1;
    end
    assign push_ready = broadcast ? !full_any
                                  : (count[push_sel] != DEPTH);
    assign pop_ready = (count[pop_sel] != 0);
    assign pop_data = mem[pop_sel*DEPTH + head[pop_sel]];

    always @(posedge clk) begin
        if (rst) begin
            for (i = 0; i < CHANNELS; i = i + 1) begin
                count[i] <= 0; head[i] <= 0; tail[i] <= 0;
            end
        end else begin
            if (push_valid && push_ready) begin
                if (broadcast) begin
                    for (i = 0; i < CHANNELS; i = i + 1) begin
                        mem[i*DEPTH + tail[i]] <= push_data;
                        tail[i] <= tail[i] + 1'b1;
                        count[i] <= count[i] + 1'b1;
                    end
                end else begin
                    mem[push_sel*DEPTH + tail[push_sel]] <= push_data;
                    tail[push_sel] <= tail[push_sel] + 1'b1;
                    count[push_sel] <= count[push_sel] + 1'b1;
                end
            end
            if (pop_valid && pop_ready) begin
                head[pop_sel] <= head[pop_sel] + 1'b1;
                count[pop_sel] <= count[pop_sel] - 1'b1;
            end
        end
    end
endmodule

module cgpa_liveout_regs #(
    parameter N = 4
) (
    input  wire        clk,
    input  wire        rst,
    input  wire        we,
    input  wire [7:0]  waddr,
    input  wire [63:0] wdata,
    input  wire [7:0]  raddr,
    output wire [63:0] rdata
);
    reg [63:0] regs [0:N-1];
    assign rdata = regs[raddr];
    always @(posedge clk)
        if (we) regs[waddr] <= wdata;
endmodule
"""
