"""Operation timing, area and energy tables for the Stratix-IV-class target.

Latencies are in cycles at the paper's 200 MHz synthesis target; ALUT
counts approximate Quartus II mapping results for 32-bit operators (FP
operators use the Altera megafunction core latencies).  Energy numbers are
per-operation dynamic energies in picojoules, used by the activity-based
power model; they are calibration constants, not measurements — the cost
model's purpose is reproducing Table 3's *shape* (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.instructions import (
    GEP,
    Alloca,
    BinaryOp,
    Call,
    Cast,
    CondBranch,
    Consume,
    FCmp,
    ICmp,
    Instruction,
    Jump,
    Load,
    ParallelFork,
    ParallelJoin,
    Phi,
    Produce,
    ProduceBroadcast,
    Ret,
    RetrieveLiveout,
    Select,
    Store,
    StoreLiveout,
)
from ..ir.types import FloatType


@dataclass(frozen=True)
class OpCost:
    """Cost of one operation instance."""

    latency: int  # cycles from issue to result
    aluts: int  # combinational ALUTs consumed by the datapath unit
    energy_pj: float  # dynamic energy per execution
    blocking: bool = False  # may stall the FSM (memory / FIFO)


#: Costs per integer/logic binary opcode (32-bit operands).
_INT_BINOP_COSTS: dict[str, OpCost] = {
    "add": OpCost(1, 32, 1.0),
    "sub": OpCost(1, 32, 1.0),
    "mul": OpCost(2, 112, 4.0),
    "sdiv": OpCost(16, 360, 24.0),
    "udiv": OpCost(16, 360, 24.0),
    "srem": OpCost(16, 360, 24.0),
    "urem": OpCost(16, 360, 24.0),
    "and": OpCost(1, 16, 0.5),
    "or": OpCost(1, 16, 0.5),
    "xor": OpCost(1, 16, 0.5),
    "shl": OpCost(1, 48, 1.0),
    "ashr": OpCost(1, 48, 1.0),
    "lshr": OpCost(1, 48, 1.0),
}

#: FP operator cores (single precision; doubles cost ~1.8x area).
_FLOAT_BINOP_COSTS: dict[str, OpCost] = {
    "fadd": OpCost(7, 540, 12.0),
    "fsub": OpCost(7, 540, 12.0),
    "fmul": OpCost(5, 260, 14.0),
    "fdiv": OpCost(20, 900, 40.0),
}

_DOUBLE_AREA_FACTOR = 1.8

LOAD_COST = OpCost(2, 40, 8.0, blocking=True)  # hit path; misses stall
STORE_COST = OpCost(1, 30, 8.0, blocking=True)
GEP_COST = OpCost(1, 36, 1.2)
ICMP_COST = OpCost(1, 24, 0.8)
FCMP_COST = OpCost(2, 120, 4.0)
SELECT_COST = OpCost(1, 32, 0.8)
PHI_COST = OpCost(0, 18, 0.4)  # input mux into the register
CAST_INT_COST = OpCost(0, 0, 0.0)  # wiring
CAST_FP_COST = OpCost(4, 200, 6.0)  # int<->fp conversion cores
BRANCH_COST = OpCost(1, 12, 0.6)
RET_COST = OpCost(1, 4, 0.2)
PRODUCE_COST = OpCost(1, 28, 2.0, blocking=True)
CONSUME_COST = OpCost(1, 28, 2.0, blocking=True)
LIVEOUT_COST = OpCost(1, 20, 0.8)
FORK_COST = OpCost(1, 24, 1.0)
JOIN_COST = OpCost(1, 12, 0.5, blocking=True)
CALL_COST = OpCost(1, 20, 1.0)  # handshake into the callee sub-module
ALLOCA_COST = OpCost(1, 8, 0.4)

#: Overheads not tied to single ops.
FSM_BASE_ALUTS = 60  # state register + next-state logic per worker
FIFO_ALUTS_PER_CHANNEL = 48  # control logic; storage is BRAM (tracked apart)
ARBITER_ALUTS_PER_PORT = 35  # request/response crossbar slice

#: Static (leakage + clock tree) power per ALUT, in microwatts.
STATIC_UW_PER_ALUT = 4.0
#: FIFO push/pop energy (BRAM access), pJ.
FIFO_ACCESS_PJ = 2.5
#: Cache access energies, pJ.
CACHE_HIT_PJ = 18.0
CACHE_MISS_PJ = 180.0


def cost_of(inst: Instruction) -> OpCost:
    """Timing/area/energy cost of one IR instruction."""
    if isinstance(inst, BinaryOp):
        if inst.opcode in _FLOAT_BINOP_COSTS:
            cost = _FLOAT_BINOP_COSTS[inst.opcode]
            if isinstance(inst.type, FloatType) and inst.type.bits == 64:
                return OpCost(
                    cost.latency + 2,
                    int(cost.aluts * _DOUBLE_AREA_FACTOR),
                    cost.energy_pj * _DOUBLE_AREA_FACTOR,
                )
            return cost
        return _INT_BINOP_COSTS[inst.opcode]
    if isinstance(inst, Load):
        return LOAD_COST
    if isinstance(inst, Store):
        return STORE_COST
    if isinstance(inst, GEP):
        return GEP_COST
    if isinstance(inst, ICmp):
        return ICMP_COST
    if isinstance(inst, FCmp):
        return FCMP_COST
    if isinstance(inst, Select):
        return SELECT_COST
    if isinstance(inst, Phi):
        return PHI_COST
    if isinstance(inst, Cast):
        if inst.opcode in ("sitofp", "fptosi", "fpext", "fptrunc"):
            return CAST_FP_COST
        return CAST_INT_COST
    if isinstance(inst, (Jump, CondBranch)):
        return BRANCH_COST
    if isinstance(inst, Ret):
        return RET_COST
    if isinstance(inst, Produce):
        return PRODUCE_COST
    if isinstance(inst, ProduceBroadcast):
        return PRODUCE_COST
    if isinstance(inst, Consume):
        return CONSUME_COST
    if isinstance(inst, (StoreLiveout, RetrieveLiveout)):
        return LIVEOUT_COST
    if isinstance(inst, ParallelFork):
        return FORK_COST
    if isinstance(inst, ParallelJoin):
        return JOIN_COST
    if isinstance(inst, Call):
        return CALL_COST
    if isinstance(inst, Alloca):
        return ALLOCA_COST
    return OpCost(1, 16, 1.0)


def is_blocking(inst: Instruction) -> bool:
    """True when the op may stall the FSM (memory / FIFO / join)."""

    return cost_of(inst).blocking


def is_memory_op(inst: Instruction) -> bool:
    """True for loads and stores."""

    return isinstance(inst, (Load, Store))


def is_fifo_op(inst: Instruction) -> bool:
    """True for produce/produce_broadcast/consume."""

    return isinstance(inst, (Produce, ProduceBroadcast, Consume))
