"""FSM scheduling: assign every instruction a state (cycle) in its block.

The scheduler mirrors the backend of Section 3.4: each basic block becomes
a run of FSM states; instructions are placed ASAP subject to data
dependences, one-memory-port serialization, and the paper's four
scheduling constraints for the new primitives:

(1) ``parallel_fork`` ops of the same loop share one state (all workers
    launch in the same cycle);
(2) forks of *different* loops are at least one state apart;
(3) produce/consume never share a state with a memory operation (both can
    stall, and sharing would double-push/pop on replays);
(4) ``store_liveout`` is co-scheduled with the block's terminator (live-out
    registers latch only when the loop exits).

Blocking operations (memory, FIFO, call, join) each get a dedicated state
in program order; non-blocking ops may share states freely (spatial HLS
hardware instantiates one functional unit per op, so intra-state ILP is
bounded by dependences, not unit counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ScheduleError
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    Call,
    Instruction,
    ParallelFork,
    Phi,
    StoreLiveout,
)
from .resources import cost_of, is_blocking


@dataclass
class BlockSchedule:
    """States of one basic block: ``states[i]`` = ops issued in state i."""

    block: BasicBlock
    state_of: dict[int, int] = field(default_factory=dict)  # id(inst) -> state
    n_states: int = 1

    def ops_in_state(self, state: int) -> list[Instruction]:
        return [
            inst
            for inst in self.block.instructions
            if self.state_of.get(id(inst), -1) == state
        ]

    @property
    def states(self) -> list[list[Instruction]]:
        table: list[list[Instruction]] = [[] for _ in range(self.n_states)]
        for inst in self.block.instructions:
            table[self.state_of[id(inst)]].append(inst)
        return table


@dataclass
class FunctionSchedule:
    """Complete FSM schedule of one function (a worker module)."""

    function: Function
    blocks: dict[int, BlockSchedule] = field(default_factory=dict)

    def block_schedule(self, block: BasicBlock) -> BlockSchedule:
        return self.blocks[id(block)]

    @property
    def total_states(self) -> int:
        return sum(bs.n_states for bs in self.blocks.values())

    def state_of(self, inst: Instruction) -> int:
        assert inst.parent is not None
        return self.blocks[id(inst.parent)].state_of[id(inst)]


def schedule_function(function: Function) -> FunctionSchedule:
    """Schedule every block of ``function`` into FSM states."""
    schedule = FunctionSchedule(function)
    for block in function.blocks:
        schedule.blocks[id(block)] = _schedule_block(block)
    _check_constraints(schedule)
    return schedule


def _schedule_block(block: BasicBlock) -> BlockSchedule:
    bs = BlockSchedule(block)
    state_of = bs.state_of
    local_defs = {id(inst) for inst in block.instructions}
    last_blocking_state = -1
    fork_states: dict[int, int] = {}  # loop_id -> state (constraint 1)
    liveouts: list[StoreLiveout] = []
    # Last state any op is still busy in (an op at state s with latency L
    # occupies states [s, s+L-1]; a latency-0 op finishes within s).
    last_busy = 0

    for inst in block.instructions:
        if isinstance(inst, Phi):
            # Phis are register muxes resolved on block entry: state 0.
            state_of[id(inst)] = 0
            continue
        if isinstance(inst, StoreLiveout):
            liveouts.append(inst)  # placed with the terminator (4)
            continue
        ready = 0
        deps = list(inst.operands)
        if inst.is_terminator:
            # The branch edge latches the successors' phi registers from
            # the incoming values' result registers, so those writes must
            # have retired — the latch is a consumer of the incoming ops.
            for succ in inst.successors():
                for phi in succ.phis():
                    deps.append(phi.incoming_for(block))
        for op in deps:
            if isinstance(op, Instruction) and id(op) in local_defs:
                if id(op) not in state_of:
                    continue  # forward ref (only via phis; handled above)
                ready = max(ready, state_of[id(op)] + cost_of(op).latency)
        if isinstance(inst, ParallelFork):
            if inst.loop_id in fork_states:
                state = fork_states[inst.loop_id]
                if ready > state:
                    raise ScheduleError(
                        "fork operands not ready at the common fork state"
                    )
            else:
                state = max(ready, last_blocking_state + 1)
                fork_states[inst.loop_id] = state
                last_blocking_state = state
        elif is_blocking(inst) or isinstance(inst, Call):
            # One potentially-stalling op per state, in program order
            # (also enforces constraint 3 and memory-port serialization).
            state = max(ready, last_blocking_state + 1)
            last_blocking_state = state
        elif inst.has_side_effects and not inst.is_terminator:
            # Hardware-state readers/writers (retrieve_liveout etc.) keep
            # program order relative to stalling ops: a retrieve scheduled
            # before the join would read stale live-out registers.
            state = max(ready, last_blocking_state)
        elif inst.is_terminator:
            # The branch fires once every register write has retired.
            state = max(ready, last_busy)
        else:
            state = ready
        state_of[id(inst)] = state
        latency = cost_of(inst).latency
        last_busy = max(last_busy, state + max(latency - 1, 0))

    terminator = block.terminator
    term_state = state_of.get(id(terminator), last_busy) if terminator else last_busy
    for lo in liveouts:
        state_of[id(lo)] = term_state  # constraint (4)
    bs.n_states = max(term_state + 1, last_busy + 1, 1)
    return bs


def _check_constraints(schedule: FunctionSchedule) -> None:
    """Assert the paper's constraints hold on the final schedule."""
    from .resources import is_fifo_op, is_memory_op

    for bs in schedule.blocks.values():
        by_state: dict[int, list[Instruction]] = {}
        for inst in bs.block.instructions:
            by_state.setdefault(bs.state_of[id(inst)], []).append(inst)
        for state, ops in by_state.items():
            fifo = [o for o in ops if is_fifo_op(o)]
            mem = [o for o in ops if is_memory_op(o)]
            if fifo and mem:
                raise ScheduleError(
                    f"constraint 3 violated in {bs.block.short_name()} "
                    f"state {state}: FIFO op shares a state with memory op"
                )
            if len(fifo) + len(mem) > 1:
                raise ScheduleError(
                    f"multiple stalling ops in one state "
                    f"({bs.block.short_name()} state {state})"
                )
            forks = [o for o in ops if isinstance(o, ParallelFork)]
            loop_ids = {f.loop_id for f in forks}
            if len(loop_ids) > 1:
                raise ScheduleError("constraint 2 violated: forks of two loops share a state")
        # Constraint 1: forks of one loop share a single state.
        fork_states: dict[int, set[int]] = {}
        for inst in bs.block.instructions:
            if isinstance(inst, ParallelFork):
                fork_states.setdefault(inst.loop_id, set()).add(
                    bs.state_of[id(inst)]
                )
        for loop_id, states in fork_states.items():
            if len(states) != 1:
                raise ScheduleError(
                    f"constraint 1 violated: loop {loop_id} forks span "
                    f"states {sorted(states)}"
                )
        # Constraint 4: store_liveout with the terminator.
        term = bs.block.terminator
        if term is None:
            continue
        term_state = bs.state_of[id(term)]
        for inst in bs.block.instructions:
            if isinstance(inst, StoreLiveout):
                if bs.state_of[id(inst)] != term_state:
                    raise ScheduleError("constraint 4 violated")
