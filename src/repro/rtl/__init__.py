"""RTL backend: FSM scheduling, Verilog and testbench emission."""

from .resources import OpCost, cost_of, is_blocking, is_fifo_op, is_memory_op
from .schedule import BlockSchedule, FunctionSchedule, schedule_function
from .testbench import generate_testbench
from .verilog import (
    generate_verilog,
    generate_verilog_hierarchy,
    support_library,
)

__all__ = [
    "OpCost", "cost_of", "is_blocking", "is_memory_op", "is_fifo_op",
    "FunctionSchedule", "BlockSchedule", "schedule_function",
    "generate_verilog", "generate_verilog_hierarchy", "support_library",
    "generate_testbench",
]
