"""CGPA: Coarse-Grained Pipelined Accelerators — a full Python reproduction.

This package reimplements the HLS framework of Liu, Ghosh, Johnson and
August, *CGPA: Coarse-Grained Pipelined Accelerators* (DAC 2014): a C
frontend, an LLVM-like IR, PDG/SCC analyses, the coarse-grained pipeline
partitioner and transformer, an FSM scheduler with the paper's constraints,
a Verilog emitter, and a cycle-accurate accelerator simulator with cost
models, plus the five benchmark kernels and the experiment harness.

Typical entry point::

    from repro.harness import compile_and_simulate
"""

__version__ = "1.0.0"
