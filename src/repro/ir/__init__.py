"""Typed, SSA-based intermediate representation for the CGPA tool.

The IR mirrors the subset of LLVM the paper's compiler manipulates, plus
the CGPA pipeline primitives of Table 1.
"""

from .basicblock import BasicBlock
from .builder import IRBuilder
from .function import Function
from .instructions import (
    BINOPS,
    CAST_OPS,
    FCMP_PREDS,
    FLOAT_BINOPS,
    HEAVYWEIGHT_OPCODES,
    ICMP_PREDS,
    INT_BINOPS,
    GEP,
    Alloca,
    BinaryOp,
    Call,
    Cast,
    CgpaPrimitive,
    CondBranch,
    Consume,
    FCmp,
    ICmp,
    Instruction,
    Jump,
    Load,
    ParallelFork,
    ParallelJoin,
    Phi,
    Produce,
    ProduceBroadcast,
    Ret,
    RetrieveLiveout,
    Select,
    Store,
    StoreLiveout,
)
from .module import Module
from .primitives import DEFAULT_FIFO_DEPTH, DEFAULT_FIFO_WIDTH, Channel, ChannelPlan
from .printer import print_function, print_instruction, print_module
from .types import (
    BOOL,
    F32,
    F64,
    I8,
    I16,
    I32,
    I64,
    LABEL,
    POINTER_SIZE,
    VOID,
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    LabelType,
    PointerType,
    StructType,
    Type,
    VoidType,
    ptr,
)
from .values import Argument, Constant, GlobalVariable, Value
from .verifier import verify_dominance, verify_function, verify_module

__all__ = [
    "BasicBlock", "IRBuilder", "Function", "Module",
    "Instruction", "BinaryOp", "ICmp", "FCmp", "Alloca", "Load", "Store",
    "GEP", "Jump", "CondBranch", "Phi", "Call", "Ret", "Cast", "Select",
    "CgpaPrimitive", "Produce", "ProduceBroadcast", "Consume",
    "ParallelFork", "ParallelJoin", "StoreLiveout", "RetrieveLiveout",
    "Channel", "ChannelPlan", "DEFAULT_FIFO_DEPTH", "DEFAULT_FIFO_WIDTH",
    "print_module", "print_function", "print_instruction",
    "verify_module", "verify_function", "verify_dominance",
    "Type", "VoidType", "IntType", "FloatType", "PointerType", "ArrayType",
    "StructType", "FunctionType", "LabelType", "ptr",
    "VOID", "BOOL", "I8", "I16", "I32", "I64", "F32", "F64", "LABEL",
    "POINTER_SIZE",
    "Value", "Constant", "Argument", "GlobalVariable",
    "BINOPS", "INT_BINOPS", "FLOAT_BINOPS", "ICMP_PREDS", "FCMP_PREDS",
    "CAST_OPS", "HEAVYWEIGHT_OPCODES",
]
