"""Modules: the translation-unit container (functions, globals, structs)."""

from __future__ import annotations

from ..errors import IRError
from .function import Function
from .types import FunctionType, StructType, Type
from .values import GlobalVariable


class Module:
    """A compiled translation unit."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalVariable] = {}
        self.structs: dict[str, StructType] = {}

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise IRError(f"duplicate function @{function.name}")
        self.functions[function.name] = function
        function.module = self
        return function

    def new_function(
        self,
        name: str,
        function_type: FunctionType,
        param_names: list[str] | None = None,
    ) -> Function:
        return self.add_function(Function(name, function_type, param_names))

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function @{name} in module {self.name}") from None

    def add_global(self, value_type: Type, name: str, initializer=None) -> GlobalVariable:
        if name in self.globals:
            raise IRError(f"duplicate global @{name}")
        g = GlobalVariable(value_type, name, initializer)
        self.globals[name] = g
        return g

    def get_struct(self, name: str) -> StructType:
        if name not in self.structs:
            self.structs[name] = StructType(name)
        return self.structs[name]

    def __repr__(self) -> str:
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
