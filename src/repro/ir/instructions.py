"""IR instruction set.

The instruction set is LLVM-flavoured (typed SSA, explicit memory ops,
``getelementptr`` address arithmetic) plus the seven CGPA primitives of the
paper's Table 1 (``produce``, ``produce_broadcast``, ``consume``,
``parallel_fork``, ``parallel_join``, ``store_liveout``,
``retrieve_liveout``).  Those primitives carry the cross-stage dependences
of a pipelined loop and are given dedicated classes because the RTL
scheduler imposes the paper's constraints (1)-(4) on them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

from ..errors import IRError
from .types import (
    BOOL,
    VOID,
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
)
from .values import Constant, Value

if TYPE_CHECKING:  # pragma: no cover
    from .basicblock import BasicBlock
    from .function import Function
    from .primitives import Channel


# Integer and float binary opcodes.
INT_BINOPS = {
    "add", "sub", "mul", "sdiv", "srem", "udiv", "urem",
    "and", "or", "xor", "shl", "ashr", "lshr",
}
FLOAT_BINOPS = {"fadd", "fsub", "fmul", "fdiv"}
BINOPS = INT_BINOPS | FLOAT_BINOPS

ICMP_PREDS = {"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}
FCMP_PREDS = {"oeq", "one", "olt", "ole", "ogt", "oge"}

CAST_OPS = {
    "trunc", "zext", "sext", "fptosi", "sitofp",
    "fpext", "fptrunc", "bitcast", "ptrtoint", "inttoptr",
}

#: Opcodes the paper's replicable-section heuristic treats as heavyweight:
#: a replicable SCC containing a load or a multiply is *not* duplicated
#: into the parallel stage (Section 3.3, "Pipeline Partition").
HEAVYWEIGHT_OPCODES = {"load", "mul", "fmul", "sdiv", "udiv", "fdiv", "srem", "urem", "call"}


class Instruction(Value):
    """Base class for all instructions.

    An instruction is itself a :class:`Value` (its result).  Instructions
    with no result have :data:`repro.ir.types.VOID` type.
    """

    opcode: str = "<abstract>"

    def __init__(self, type_: Type, operands: Iterable[Value], name: str = "") -> None:
        super().__init__(type_, name)
        self.parent: "BasicBlock | None" = None
        self.operands: list[Value] = []
        for op in operands:
            self._append_operand(op)

    # -- operand management -------------------------------------------------

    def _append_operand(self, op: Value) -> None:
        if not isinstance(op, Value):
            raise IRError(f"operand of {self.opcode} is not a Value: {op!r}")
        self.operands.append(op)
        op.add_user(self)

    def set_operand(self, index: int, op: Value) -> None:
        old = self.operands[index]
        self.operands[index] = op
        op.add_user(self)
        old.remove_user(self)

    def replace_operand(self, old: Value, new: Value) -> None:
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                new.add_user(self)
        old.remove_user(self)

    def drop_operands(self) -> None:
        """Detach from all operands (call before deleting the instruction)."""
        for op in list(self.operands):
            self.operands = [o for o in self.operands if o is not op]
            op.remove_user(self)
        self.operands = []

    def erase(self) -> None:
        """Remove this instruction from its block and the use graph."""
        if self._users:
            raise IRError(f"erasing {self.opcode} that still has users")
        if self.parent is not None:
            self.parent.remove(self)
        self.drop_operands()

    # -- classification ------------------------------------------------------

    @property
    def is_terminator(self) -> bool:
        return False

    @property
    def may_read_memory(self) -> bool:
        return False

    @property
    def may_write_memory(self) -> bool:
        return False

    @property
    def has_side_effects(self) -> bool:
        """True if removing the instruction could change program behaviour.

        This is the notion the paper uses to distinguish *replicable*
        sequential sections (safe to run redundantly in several workers)
        from plain sequential ones.
        """
        return self.may_write_memory or self.is_terminator

    @property
    def is_heavyweight(self) -> bool:
        """True for ops the replicable-placement heuristic refuses to copy."""
        return self.opcode in HEAVYWEIGHT_OPCODES

    # -- cloning --------------------------------------------------------------

    def clone(self, value_map: dict[Value, Value]) -> "Instruction":
        """Structurally copy this instruction, remapping operands.

        ``value_map`` maps old values (and old blocks, for terminators and
        phis) to their replacements; unmapped operands are reused as-is
        (constants, arguments, values defined outside the cloned region).
        """
        new_ops = [value_map.get(op, op) for op in self.operands]
        copy = self._clone_impl(new_ops, value_map)
        copy.name = self.name
        return copy

    def _clone_impl(
        self, operands: list[Value], value_map: dict[Value, Value]
    ) -> "Instruction":
        raise IRError(f"clone not implemented for {self.opcode}")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.opcode} {self.short_name()}>"


class BinaryOp(Instruction):
    """Two-operand arithmetic/logic: ``add``, ``fmul``, ``xor``, ..."""

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if op not in BINOPS:
            raise IRError(f"unknown binary opcode: {op}")
        if lhs.type != rhs.type:
            raise IRError(f"{op} operand type mismatch: {lhs.type!r} vs {rhs.type!r}")
        if op in FLOAT_BINOPS and not lhs.type.is_float:
            raise IRError(f"{op} requires float operands, got {lhs.type!r}")
        if op in INT_BINOPS and not lhs.type.is_integer:
            raise IRError(f"{op} requires integer operands, got {lhs.type!r}")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.opcode = op

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def _clone_impl(self, operands, value_map):
        return BinaryOp(self.opcode, operands[0], operands[1])


class ICmp(Instruction):
    """Integer/pointer comparison producing an ``i1``."""

    opcode = "icmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if pred not in ICMP_PREDS:
            raise IRError(f"unknown icmp predicate: {pred}")
        if lhs.type != rhs.type:
            raise IRError(f"icmp type mismatch: {lhs.type!r} vs {rhs.type!r}")
        super().__init__(BOOL, [lhs, rhs], name)
        self.pred = pred

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def _clone_impl(self, operands, value_map):
        return ICmp(self.pred, operands[0], operands[1])


class FCmp(Instruction):
    """Floating-point comparison producing an ``i1``."""

    opcode = "fcmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if pred not in FCMP_PREDS:
            raise IRError(f"unknown fcmp predicate: {pred}")
        if lhs.type != rhs.type or not lhs.type.is_float:
            raise IRError(f"fcmp type mismatch: {lhs.type!r} vs {rhs.type!r}")
        super().__init__(BOOL, [lhs, rhs], name)
        self.pred = pred

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def _clone_impl(self, operands, value_map):
        return FCmp(self.pred, operands[0], operands[1])


class Alloca(Instruction):
    """Stack allocation of one object of ``allocated_type``."""

    opcode = "alloca"

    def __init__(self, allocated_type: Type, name: str = "") -> None:
        super().__init__(PointerType(allocated_type), [], name)
        self.allocated_type = allocated_type

    def _clone_impl(self, operands, value_map):
        return Alloca(self.allocated_type)


class Load(Instruction):
    """Memory read through a typed pointer."""

    opcode = "load"

    def __init__(self, pointer: Value, name: str = "") -> None:
        if not pointer.type.is_pointer:
            raise IRError(f"load from non-pointer: {pointer.type!r}")
        super().__init__(pointer.type.pointee, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def may_read_memory(self) -> bool:
        return True

    def _clone_impl(self, operands, value_map):
        return Load(operands[0])


class Store(Instruction):
    """Memory write through a typed pointer."""

    opcode = "store"

    def __init__(self, value: Value, pointer: Value) -> None:
        if not pointer.type.is_pointer:
            raise IRError(f"store to non-pointer: {pointer.type!r}")
        if pointer.type.pointee != value.type:
            raise IRError(
                f"store type mismatch: {value.type!r} into {pointer.type!r}"
            )
        super().__init__(VOID, [value, pointer])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]

    @property
    def may_write_memory(self) -> bool:
        return True

    def _clone_impl(self, operands, value_map):
        return Store(operands[0], operands[1])


class GEP(Instruction):
    """``getelementptr``: typed address arithmetic, LLVM semantics.

    The first index scales by the size of the pointee; later indices step
    into aggregate types (constant field index for structs, any value for
    arrays).  GEP never touches memory; it only computes an address.
    """

    opcode = "gep"

    def __init__(self, base: Value, indices: list[Value], name: str = "") -> None:
        if not base.type.is_pointer:
            raise IRError(f"gep base is not a pointer: {base.type!r}")
        if not indices:
            raise IRError("gep needs at least one index")
        result = _gep_result_type(base.type, indices)
        super().__init__(result, [base] + list(indices), name)

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def indices(self) -> list[Value]:
        return self.operands[1:]

    def _clone_impl(self, operands, value_map):
        return GEP(operands[0], operands[1:])


def _gep_result_type(base: PointerType, indices: list[Value]) -> PointerType:
    current: Type = base.pointee
    for idx in indices[1:]:
        if isinstance(current, StructType):
            if not isinstance(idx, Constant):
                raise IRError("struct gep index must be a constant")
            current = current.field_type(int(idx.value))
        elif isinstance(current, ArrayType):
            current = current.element
        else:
            raise IRError(f"gep steps into non-aggregate type {current!r}")
    return PointerType(current)


class Jump(Instruction):
    """Unconditional branch."""

    opcode = "br"

    def __init__(self, target: "BasicBlock") -> None:
        super().__init__(VOID, [target])

    @property
    def target(self) -> "BasicBlock":
        return self.operands[0]  # type: ignore[return-value]

    @property
    def is_terminator(self) -> bool:
        return True

    def successors(self) -> list["BasicBlock"]:
        return [self.target]

    def _clone_impl(self, operands, value_map):
        return Jump(operands[0])


class CondBranch(Instruction):
    """Conditional two-way branch on an ``i1``."""

    opcode = "condbr"

    def __init__(self, cond: Value, if_true: "BasicBlock", if_false: "BasicBlock") -> None:
        if cond.type != BOOL:
            raise IRError(f"branch condition must be i1, got {cond.type!r}")
        super().__init__(VOID, [cond, if_true, if_false])

    @property
    def cond(self) -> Value:
        return self.operands[0]

    @property
    def if_true(self) -> "BasicBlock":
        return self.operands[1]  # type: ignore[return-value]

    @property
    def if_false(self) -> "BasicBlock":
        return self.operands[2]  # type: ignore[return-value]

    @property
    def is_terminator(self) -> bool:
        return True

    def successors(self) -> list["BasicBlock"]:
        return [self.if_true, self.if_false]

    def _clone_impl(self, operands, value_map):
        return CondBranch(operands[0], operands[1], operands[2])


class Phi(Instruction):
    """SSA phi node; operand i arrives from ``incoming_blocks[i]``."""

    opcode = "phi"

    def __init__(self, type_: Type, name: str = "") -> None:
        super().__init__(type_, [], name)
        self.incoming_blocks: list["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type != self.type:
            raise IRError(
                f"phi incoming type {value.type!r} differs from {self.type!r}"
            )
        self._append_operand(value)
        self.incoming_blocks.append(block)

    def incoming(self) -> list[tuple[Value, "BasicBlock"]]:
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_for(self, block: "BasicBlock") -> Value:
        for value, pred in self.incoming():
            if pred is block:
                return value
        raise IRError(f"phi has no incoming value for block {block.name}")

    def remove_incoming(self, block: "BasicBlock") -> None:
        for i, pred in enumerate(self.incoming_blocks):
            if pred is block:
                old = self.operands.pop(i)
                self.incoming_blocks.pop(i)
                old.remove_user(self)
                return
        raise IRError(f"phi has no incoming edge from {block.name}")

    def replace_incoming_block(self, old: "BasicBlock", new: "BasicBlock") -> None:
        self.incoming_blocks = [new if b is old else b for b in self.incoming_blocks]

    def _clone_impl(self, operands, value_map):
        copy = Phi(self.type)
        for op, block in zip(operands, self.incoming_blocks):
            copy._append_operand(op)
            copy.incoming_blocks.append(value_map.get(block, block))  # type: ignore[arg-type]
        return copy


class Call(Instruction):
    """Direct call to a module-level function."""

    opcode = "call"

    def __init__(self, callee: "Function", args: list[Value], name: str = "") -> None:
        ftype = callee.function_type
        if len(args) != len(ftype.param_types):
            raise IRError(
                f"call to {callee.name}: expected {len(ftype.param_types)} "
                f"args, got {len(args)}"
            )
        for arg, expected in zip(args, ftype.param_types):
            if arg.type != expected:
                raise IRError(
                    f"call to {callee.name}: arg type {arg.type!r} != {expected!r}"
                )
        super().__init__(ftype.return_type, list(args), name)
        self.callee = callee

    @property
    def args(self) -> list[Value]:
        return self.operands

    @property
    def may_read_memory(self) -> bool:
        return True  # refined by interprocedural mod/ref analysis

    @property
    def may_write_memory(self) -> bool:
        return True  # refined by interprocedural mod/ref analysis

    def _clone_impl(self, operands, value_map):
        return Call(self.callee, operands)


class Ret(Instruction):
    """Function return, with an optional value."""

    opcode = "ret"

    def __init__(self, value: Value | None = None) -> None:
        super().__init__(VOID, [] if value is None else [value])

    @property
    def value(self) -> Value | None:
        return self.operands[0] if self.operands else None

    @property
    def is_terminator(self) -> bool:
        return True

    def successors(self) -> list["BasicBlock"]:
        return []

    def _clone_impl(self, operands, value_map):
        return Ret(operands[0] if operands else None)


class Cast(Instruction):
    """Type conversion (``sext``, ``sitofp``, ``bitcast``, ...)."""

    def __init__(self, op: str, value: Value, to_type: Type, name: str = "") -> None:
        if op not in CAST_OPS:
            raise IRError(f"unknown cast opcode: {op}")
        super().__init__(to_type, [value], name)
        self.opcode = op

    @property
    def value(self) -> Value:
        return self.operands[0]

    def _clone_impl(self, operands, value_map):
        return Cast(self.opcode, operands[0], self.type)


class Select(Instruction):
    """Ternary select: ``cond ? if_true : if_false``."""

    opcode = "select"

    def __init__(self, cond: Value, if_true: Value, if_false: Value, name: str = "") -> None:
        if cond.type != BOOL:
            raise IRError(f"select condition must be i1, got {cond.type!r}")
        if if_true.type != if_false.type:
            raise IRError("select arm types differ")
        super().__init__(if_true.type, [cond, if_true, if_false], name)

    def _clone_impl(self, operands, value_map):
        return Select(operands[0], operands[1], operands[2])


# ---------------------------------------------------------------------------
# CGPA primitives (paper Table 1)
# ---------------------------------------------------------------------------


class CgpaPrimitive(Instruction):
    """Marker base class for the Table 1 primitives.

    ``constraint_class`` is the paper's Class column: 1 for fork/join, 2
    for the FIFO primitives, 3 for live-out registers.  The RTL scheduler
    keys its constraints (1)-(4) off this attribute.
    """

    constraint_class: int = 0


class Produce(CgpaPrimitive):
    """Push ``value`` to one FIFO channel of a multi-channel buffer.

    ``worker_select`` picks the destination channel (the paper's
    ``WorkerID`` argument); for a single-consumer buffer it is a constant
    zero.
    """

    opcode = "produce"
    constraint_class = 2

    def __init__(self, channel: "Channel", worker_select: Value, value: Value) -> None:
        super().__init__(VOID, [worker_select, value])
        self.channel = channel

    @property
    def worker_select(self) -> Value:
        return self.operands[0]

    @property
    def value(self) -> Value:
        return self.operands[1]

    @property
    def has_side_effects(self) -> bool:
        return True

    def _clone_impl(self, operands, value_map):
        return Produce(self.channel, operands[0], operands[1])


class ProduceBroadcast(CgpaPrimitive):
    """Push ``value`` to every channel of the buffer (all consumers)."""

    opcode = "produce_broadcast"
    constraint_class = 2

    def __init__(self, channel: "Channel", value: Value) -> None:
        super().__init__(VOID, [value])
        self.channel = channel

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def has_side_effects(self) -> bool:
        return True

    def _clone_impl(self, operands, value_map):
        return ProduceBroadcast(self.channel, operands[0])


class Consume(CgpaPrimitive):
    """Pop one value from a channel of the buffer.

    With no selector the worker pops its own channel (indexed by its
    worker id).  A sequential stage consuming round-robin from parallel
    producers passes an explicit ``worker_select`` (paper Appendix A.1:
    "the sequential worker completes its task by fetching index values
    from the buffers on a round-robin basis").
    """

    opcode = "consume"
    constraint_class = 2

    def __init__(
        self,
        channel: "Channel",
        type_: Type,
        worker_select: Value | None = None,
        name: str = "",
    ) -> None:
        super().__init__(type_, [] if worker_select is None else [worker_select], name)
        self.channel = channel

    @property
    def worker_select(self) -> Value | None:
        return self.operands[0] if self.operands else None

    @property
    def has_side_effects(self) -> bool:
        return True  # popping mutates FIFO state; never DCE a consume

    def _clone_impl(self, operands, value_map):
        return Consume(self.channel, self.type, operands[0] if operands else None)


class ParallelFork(CgpaPrimitive):
    """Invoke one hardware worker for a task (paper: ``parallel_fork``)."""

    opcode = "parallel_fork"
    constraint_class = 1

    def __init__(
        self,
        loop_id: int,
        task: "Function",
        liveins: list[Value],
        worker_id: int | None = None,
    ) -> None:
        super().__init__(VOID, list(liveins))
        self.loop_id = loop_id
        self.task = task
        self.worker_id = worker_id

    @property
    def liveins(self) -> list[Value]:
        return self.operands

    @property
    def has_side_effects(self) -> bool:
        return True

    def _clone_impl(self, operands, value_map):
        return ParallelFork(self.loop_id, self.task, operands, self.worker_id)


class ParallelJoin(CgpaPrimitive):
    """Stall until all workers of ``loop_id`` raise their finish signal."""

    opcode = "parallel_join"
    constraint_class = 1

    def __init__(self, loop_id: int) -> None:
        super().__init__(VOID, [])
        self.loop_id = loop_id

    @property
    def has_side_effects(self) -> bool:
        return True

    def _clone_impl(self, operands, value_map):
        return ParallelJoin(self.loop_id)


class StoreLiveout(CgpaPrimitive):
    """Latch a live-out value into the accelerator's live-out register."""

    opcode = "store_liveout"
    constraint_class = 3

    def __init__(self, liveout_id: int, value: Value) -> None:
        super().__init__(VOID, [value])
        self.liveout_id = liveout_id

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def has_side_effects(self) -> bool:
        return True

    def _clone_impl(self, operands, value_map):
        return StoreLiveout(self.liveout_id, operands[0])


class RetrieveLiveout(CgpaPrimitive):
    """Read a live-out register back in the parent function."""

    opcode = "retrieve_liveout"
    constraint_class = 3

    def __init__(self, liveout_id: int, type_: Type, name: str = "") -> None:
        super().__init__(type_, [], name)
        self.liveout_id = liveout_id

    @property
    def has_side_effects(self) -> bool:
        return True  # reads hardware register state

    def _clone_impl(self, operands, value_map):
        return RetrieveLiveout(self.liveout_id, self.type)


#: Python semantics for the integer binops, used by the interpreter and the
#: constant folder so they cannot disagree.
def _sdiv(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("sdiv by zero")
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


def _srem(a: int, b: int) -> int:
    return a - _sdiv(a, b) * b


INT_BINOP_FUNCS: dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "sdiv": _sdiv,
    "srem": _srem,
    "udiv": lambda a, b: a // b,
    "urem": lambda a, b: a % b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 63),
    "ashr": lambda a, b: a >> (b & 63),
    "lshr": lambda a, b: a >> (b & 63),  # operands are wrapped unsigned first
}

FLOAT_BINOP_FUNCS: dict[str, Callable[[float, float], float]] = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": lambda a, b: a / b,
}

ICMP_FUNCS: dict[str, Callable[[int, int], bool]] = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
    "ult": lambda a, b: a < b,  # operands are wrapped unsigned first
    "ule": lambda a, b: a <= b,
    "ugt": lambda a, b: a > b,
    "uge": lambda a, b: a >= b,
}

FCMP_FUNCS: dict[str, Callable[[float, float], bool]] = {
    "oeq": lambda a, b: a == b,
    "one": lambda a, b: a != b,
    "olt": lambda a, b: a < b,
    "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b,
    "oge": lambda a, b: a >= b,
}
