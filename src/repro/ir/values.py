"""Core value classes: the SSA value graph.

Every operand of an instruction is a :class:`Value`.  Values track their
users so transforms (DCE, mem2reg, pipeline task extraction) can rewrite
the graph with :meth:`Value.replace_all_uses_with`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from .types import Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .instructions import Instruction


class Value:
    """Anything that can appear as an instruction operand."""

    def __init__(self, type_: Type, name: str = "") -> None:
        self.type = type_
        self.name = name
        # Users are instructions; a user appears once even if it uses this
        # value in several operand slots (the count lives in its operand
        # list).  A plain list keeps deterministic iteration order.
        self._users: list["Instruction"] = []

    @property
    def users(self) -> list["Instruction"]:
        """Instructions currently using this value (deterministic order)."""
        return list(self._users)

    def add_user(self, user: "Instruction") -> None:
        if user not in self._users:
            self._users.append(user)

    def remove_user(self, user: "Instruction") -> None:
        # Only drop the user when it no longer references this value in any
        # operand slot (it may use the same value twice, e.g. add x, x).
        if user in self._users and self not in user.operands:
            self._users.remove(user)

    def replace_all_uses_with(self, replacement: "Value") -> None:
        """Rewrite every user to use ``replacement`` instead of ``self``."""
        if replacement is self:
            return
        for user in self.users:
            user.replace_operand(self, replacement)

    @property
    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    def short_name(self) -> str:
        """A compact printable handle, used by the IR printer."""
        return f"%{self.name}" if self.name else f"%v{id(self) & 0xFFFF:x}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.short_name()}: {self.type!r}>"


class Constant(Value):
    """A compile-time constant (integer, float, or null pointer)."""

    def __init__(self, type_: Type, value: int | float) -> None:
        super().__init__(type_)
        self.value = value

    def short_name(self) -> str:
        if self.type.is_pointer and self.value == 0:
            return "null"
        if self.type.is_float:
            return repr(float(self.value))
        return str(int(self.value))

    def __repr__(self) -> str:
        return f"<Constant {self.short_name()}: {self.type!r}>"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, type_: Type, name: str, index: int) -> None:
        super().__init__(type_, name)
        self.index = index

    def short_name(self) -> str:
        return f"%{self.name or f'arg{self.index}'}"


class GlobalVariable(Value):
    """A module-level variable.

    The value's type is a *pointer* to ``value_type`` (as in LLVM): loads
    and stores go through it.  The interpreter assigns each global a fixed
    address in the memory image; ``initializer`` is a flat list of scalar
    values laid out in memory order, or ``None`` for zero-fill.
    """

    def __init__(
        self,
        value_type: Type,
        name: str,
        initializer: list[int | float] | None = None,
    ) -> None:
        from .types import PointerType

        super().__init__(PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer

    def short_name(self) -> str:
        return f"@{self.name}"


def uses_of(value: Value, among: Iterable["Instruction"]) -> list["Instruction"]:
    """Users of ``value`` restricted to the instructions in ``among``."""
    pool = set(among)
    return [u for u in value.users if u in pool]
