"""Human-readable textual form of the IR (LLVM-flavoured).

The printer assigns stable per-function value numbers, so printing the same
function twice gives identical text — tests rely on this determinism.
"""

from __future__ import annotations

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    GEP,
    Alloca,
    BinaryOp,
    Call,
    Cast,
    CondBranch,
    Consume,
    FCmp,
    ICmp,
    Instruction,
    Jump,
    Load,
    ParallelFork,
    ParallelJoin,
    Phi,
    Produce,
    ProduceBroadcast,
    Ret,
    RetrieveLiveout,
    Select,
    Store,
    StoreLiveout,
)
from .module import Module
from .values import Argument, Constant, GlobalVariable, Value


class _Namer:
    """Assigns %N numbers to unnamed values within one function."""

    def __init__(self) -> None:
        self._names: dict[int, str] = {}
        self._counter = 0

    def name(self, value: Value) -> str:
        if isinstance(value, Constant):
            return value.short_name()
        if isinstance(value, GlobalVariable):
            return f"@{value.name}"
        if isinstance(value, Function):
            return f"@{value.name}"
        if isinstance(value, BasicBlock):
            return f"%{value.short_name()}"
        if isinstance(value, Argument):
            return f"%{value.name or f'arg{value.index}'}"
        key = id(value)
        if key not in self._names:
            if value.name:
                self._names[key] = f"%{value.name}.{self._counter}"
            else:
                self._names[key] = f"%t{self._counter}"
            self._counter += 1
        return self._names[key]


def print_module(module: Module) -> str:
    """Render a whole module as LLVM-flavoured text."""

    lines = [f"; module {module.name}"]
    for struct in module.structs.values():
        if struct.is_opaque:
            lines.append(f"%{struct.name} = type opaque")
        else:
            body = ", ".join(f"{t!r} {n}" for n, t in struct.fields)
            lines.append(f"%{struct.name} = type {{ {body} }}")
    for g in module.globals.values():
        init = "zeroinitializer" if g.initializer is None else repr(g.initializer)
        lines.append(f"@{g.name} = global {g.value_type!r} {init}")
    for function in module.functions.values():
        lines.append("")
        lines.append(print_function(function))
    return "\n".join(lines)


def print_function(function: Function) -> str:
    """Render one function (or declaration) as text."""

    namer = _Namer()
    params = ", ".join(
        f"{a.type!r} {namer.name(a)}" for a in function.args
    )
    header = f"define {function.function_type.return_type!r} @{function.name}({params})"
    if function.is_declaration:
        return header.replace("define", "declare")
    lines = [header + " {"]
    for block in function.blocks:
        lines.append(f"{block.short_name()}:")
        for inst in block.instructions:
            lines.append("  " + print_instruction(inst, namer))
    lines.append("}")
    return "\n".join(lines)


def print_instruction(inst: Instruction, namer: _Namer | None = None) -> str:
    """Render a single instruction as text."""

    n = (namer or _Namer()).name

    def res() -> str:
        return f"{n(inst)} = "

    if isinstance(inst, BinaryOp):
        return f"{res()}{inst.opcode} {inst.type!r} {n(inst.lhs)}, {n(inst.rhs)}"
    if isinstance(inst, ICmp):
        return f"{res()}icmp {inst.pred} {inst.lhs.type!r} {n(inst.lhs)}, {n(inst.operands[1])}"
    if isinstance(inst, FCmp):
        return f"{res()}fcmp {inst.pred} {inst.lhs.type!r} {n(inst.lhs)}, {n(inst.operands[1])}"
    if isinstance(inst, Alloca):
        return f"{res()}alloca {inst.allocated_type!r}"
    if isinstance(inst, Load):
        return f"{res()}load {inst.type!r}, {n(inst.pointer)}"
    if isinstance(inst, Store):
        return f"store {inst.value.type!r} {n(inst.value)}, {n(inst.pointer)}"
    if isinstance(inst, GEP):
        idx = ", ".join(n(i) for i in inst.indices)
        return f"{res()}gep {n(inst.base)}, {idx}"
    if isinstance(inst, Jump):
        return f"br {n(inst.target)}"
    if isinstance(inst, CondBranch):
        return f"br i1 {n(inst.cond)}, {n(inst.if_true)}, {n(inst.if_false)}"
    if isinstance(inst, Phi):
        arms = ", ".join(
            f"[ {n(v)}, {n(b)} ]" for v, b in inst.incoming()
        )
        return f"{res()}phi {inst.type!r} {arms}"
    if isinstance(inst, Call):
        args = ", ".join(n(a) for a in inst.args)
        prefix = "" if inst.type.is_void else res()
        return f"{prefix}call {inst.type!r} @{inst.callee.name}({args})"
    if isinstance(inst, Ret):
        if inst.value is None:
            return "ret void"
        return f"ret {inst.value.type!r} {n(inst.value)}"
    if isinstance(inst, Cast):
        return f"{res()}{inst.opcode} {inst.value.type!r} {n(inst.value)} to {inst.type!r}"
    if isinstance(inst, Select):
        c, t, f = inst.operands
        return f"{res()}select i1 {n(c)}, {n(t)}, {n(f)}"
    if isinstance(inst, Produce):
        return (
            f"produce buf{inst.channel.channel_id}[{n(inst.worker_select)}], "
            f"{inst.value.type!r} {n(inst.value)}"
        )
    if isinstance(inst, ProduceBroadcast):
        return (
            f"produce_broadcast buf{inst.channel.channel_id}, "
            f"{inst.value.type!r} {n(inst.value)}"
        )
    if isinstance(inst, Consume):
        sel = "" if inst.worker_select is None else f"[{n(inst.worker_select)}]"
        return f"{res()}consume {inst.type!r} buf{inst.channel.channel_id}{sel}"
    if isinstance(inst, ParallelFork):
        liveins = ", ".join(n(v) for v in inst.liveins)
        wid = "" if inst.worker_id is None else f", worker={inst.worker_id}"
        return f"parallel_fork loop{inst.loop_id} @{inst.task.name}({liveins}){wid}"
    if isinstance(inst, ParallelJoin):
        return f"parallel_join loop{inst.loop_id}"
    if isinstance(inst, StoreLiveout):
        return f"store_liveout #{inst.liveout_id}, {inst.value.type!r} {n(inst.value)}"
    if isinstance(inst, RetrieveLiveout):
        return f"{res()}retrieve_liveout {inst.type!r} #{inst.liveout_id}"
    return f"{res()}{inst.opcode} <unprintable>"
