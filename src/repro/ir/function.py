"""Functions: argument lists plus an ordered set of basic blocks."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..errors import IRError
from .basicblock import BasicBlock
from .instructions import Instruction
from .types import FunctionType
from .values import Argument, Value

if TYPE_CHECKING:  # pragma: no cover
    from .module import Module


class Function(Value):
    """A function definition (or declaration, if it has no blocks)."""

    def __init__(
        self,
        name: str,
        function_type: FunctionType,
        param_names: list[str] | None = None,
    ) -> None:
        super().__init__(function_type, name)
        self.function_type = function_type
        self.module: "Module | None" = None
        self.blocks: list[BasicBlock] = []
        names = param_names or [f"arg{i}" for i in range(len(function_type.param_types))]
        if len(names) != len(function_type.param_types):
            raise IRError(f"{name}: wrong number of parameter names")
        self.args: list[Argument] = [
            Argument(t, n, i)
            for i, (t, n) in enumerate(zip(function_type.param_types, names))
        ]
        #: Metadata slot used by the pipeline transform: stage/worker info
        #: for generated task functions (None for ordinary functions).
        self.task_info: object | None = None

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, block: BasicBlock, after: BasicBlock | None = None) -> BasicBlock:
        block.parent = self
        if after is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.blocks.index(after) + 1, block)
        return block

    def new_block(self, name: str = "", after: BasicBlock | None = None) -> BasicBlock:
        return self.add_block(BasicBlock(self._unique_block_name(name)), after)

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    def _unique_block_name(self, base: str) -> str:
        base = base or "bb"
        taken = {b.name for b in self.blocks}
        if base not in taken:
            return base
        i = 1
        while f"{base}.{i}" in taken:
            i += 1
        return f"{base}.{i}"

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def short_name(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:
        return f"<Function @{self.name} ({len(self.blocks)} blocks)>"
