"""IR type system and data layout.

The target machine mirrors the paper's evaluation platform: a 32-bit
MIPS-style core beside the accelerators, so pointers and ``int`` are four
bytes and ``double`` is eight.  Types are interned where practical so they
can be compared with ``==`` (structural equality) cheaply.
"""

from __future__ import annotations

from ..errors import IRError

#: Alignment and size of a machine pointer on the 32-bit target.
POINTER_SIZE = 4


class Type:
    """Base class for all IR types."""

    def size(self) -> int:
        """Size of a value of this type in bytes."""
        raise IRError(f"type {self} has no size")

    def alignment(self) -> int:
        """Required alignment in bytes."""
        return self.size()

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self, (StructType, ArrayType))

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)


class VoidType(Type):
    """The type of instructions that produce no value."""

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")

    def __repr__(self) -> str:
        return "void"


class IntType(Type):
    """An integer of a fixed bit width (i1, i8, i32, i64)."""

    def __init__(self, bits: int) -> None:
        if bits not in (1, 8, 16, 32, 64):
            raise IRError(f"unsupported integer width: {bits}")
        self.bits = bits

    def size(self) -> int:
        return max(1, self.bits // 8)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("int", self.bits))

    def __repr__(self) -> str:
        return f"i{self.bits}"


class FloatType(Type):
    """An IEEE float: 32-bit (C float) or 64-bit (C double)."""

    def __init__(self, bits: int) -> None:
        if bits not in (32, 64):
            raise IRError(f"unsupported float width: {bits}")
        self.bits = bits

    def size(self) -> int:
        return self.bits // 8

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FloatType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("float", self.bits))

    def __repr__(self) -> str:
        return "f32" if self.bits == 32 else "f64"


class PointerType(Type):
    """A pointer to a pointee type; four bytes on this target."""

    def __init__(self, pointee: Type) -> None:
        self.pointee = pointee

    def size(self) -> int:
        return POINTER_SIZE

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee))

    def __repr__(self) -> str:
        return f"{self.pointee!r}*"


class ArrayType(Type):
    """A fixed-length array of a uniform element type."""

    def __init__(self, element: Type, count: int) -> None:
        if count < 0:
            raise IRError(f"negative array length: {count}")
        self.element = element
        self.count = count

    def size(self) -> int:
        return self.element.size() * self.count

    def alignment(self) -> int:
        return self.element.alignment()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayType)
            and other.element == self.element
            and other.count == self.count
        )

    def __hash__(self) -> int:
        return hash(("array", self.element, self.count))

    def __repr__(self) -> str:
        return f"[{self.count} x {self.element!r}]"


class StructType(Type):
    """A named struct with ordered fields and C-style layout.

    Structs are compared by name (nominal typing, like C); the layout is
    computed with natural alignment, matching what a 32-bit C compiler
    produces for the benchmark sources.
    """

    def __init__(self, name: str, fields: list[tuple[str, Type]] | None = None) -> None:
        self.name = name
        self.fields: list[tuple[str, Type]] = []
        self._offsets: list[int] = []
        self._size = 0
        self._align = 1
        self._sealed = False
        if fields is not None:
            self.set_fields(fields)

    def set_fields(self, fields: list[tuple[str, Type]]) -> None:
        """Define the body of a (possibly forward-declared) struct."""
        if self._sealed:
            raise IRError(f"struct {self.name} already defined")
        self.fields = list(fields)
        offset = 0
        align = 1
        self._offsets = []
        for _, ftype in self.fields:
            falign = ftype.alignment()
            offset = _align_up(offset, falign)
            self._offsets.append(offset)
            offset += ftype.size()
            align = max(align, falign)
        self._size = _align_up(offset, align) if self.fields else 0
        self._align = align
        self._sealed = True

    @property
    def is_opaque(self) -> bool:
        return not self._sealed

    def size(self) -> int:
        if not self._sealed:
            raise IRError(f"size of opaque struct {self.name}")
        return self._size

    def alignment(self) -> int:
        if not self._sealed:
            raise IRError(f"alignment of opaque struct {self.name}")
        return self._align

    def field_index(self, name: str) -> int:
        for i, (fname, _) in enumerate(self.fields):
            if fname == name:
                return i
        raise IRError(f"struct {self.name} has no field {name!r}")

    def field_type(self, index: int) -> Type:
        return self.fields[index][1]

    def field_offset(self, index: int) -> int:
        if not self._sealed:
            raise IRError(f"offset into opaque struct {self.name}")
        return self._offsets[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StructType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("struct", self.name))

    def __repr__(self) -> str:
        return f"%{self.name}"


class FunctionType(Type):
    """The type of a function: return type plus parameter types."""

    def __init__(self, return_type: Type, param_types: list[Type]) -> None:
        self.return_type = return_type
        self.param_types = list(param_types)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionType)
            and other.return_type == self.return_type
            and other.param_types == self.param_types
        )

    def __hash__(self) -> int:
        return hash(("fn", self.return_type, tuple(self.param_types)))

    def __repr__(self) -> str:
        params = ", ".join(repr(t) for t in self.param_types)
        return f"{self.return_type!r} ({params})"


class LabelType(Type):
    """The type of basic blocks (branch targets)."""

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LabelType)

    def __hash__(self) -> int:
        return hash("label")

    def __repr__(self) -> str:
        return "label"


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


# Interned singletons for the common types.
VOID = VoidType()
BOOL = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)
LABEL = LabelType()


def ptr(pointee: Type) -> PointerType:
    """Shorthand for :class:`PointerType`."""
    return PointerType(pointee)
