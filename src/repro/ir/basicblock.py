"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..errors import IRError
from .instructions import Instruction, Phi
from .types import LABEL
from .values import Value

if TYPE_CHECKING:  # pragma: no cover
    from .function import Function


class BasicBlock(Value):
    """A basic block; it is a :class:`Value` of label type (branch target)."""

    def __init__(self, name: str = "") -> None:
        super().__init__(LABEL, name)
        self.parent: "Function | None" = None
        self.instructions: list[Instruction] = []

    # -- structure -----------------------------------------------------------

    def append(self, inst: Instruction) -> Instruction:
        if self.terminator is not None:
            raise IRError(f"appending to terminated block {self.name}")
        self.instructions.append(inst)
        inst.parent = self
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        self.instructions.insert(index, inst)
        inst.parent = self
        return inst

    def insert_before_terminator(self, inst: Instruction) -> Instruction:
        if self.terminator is None:
            return self.append(inst)
        return self.insert(len(self.instructions) - 1, inst)

    def remove(self, inst: Instruction) -> None:
        self.instructions.remove(inst)
        inst.parent = None

    @property
    def terminator(self) -> Instruction | None:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def phis(self) -> list[Phi]:
        return [i for i in self.instructions if isinstance(i, Phi)]

    def non_phis(self) -> list[Instruction]:
        return [i for i in self.instructions if not isinstance(i, Phi)]

    def first_non_phi_index(self) -> int:
        for i, inst in enumerate(self.instructions):
            if not isinstance(inst, Phi):
                return i
        return len(self.instructions)

    # -- graph ---------------------------------------------------------------

    def successors(self) -> list["BasicBlock"]:
        term = self.terminator
        if term is None:
            return []
        return term.successors()  # type: ignore[attr-defined]

    def predecessors(self) -> list["BasicBlock"]:
        """Blocks that branch to this one (derived from the use graph)."""
        preds = []
        for user in self.users:
            if user.is_terminator and user.parent is not None:
                if self in user.successors():  # type: ignore[attr-defined]
                    preds.append(user.parent)
        # Deduplicate preserving order; a condbr can target us on both arms.
        seen: set[int] = set()
        unique = []
        for p in preds:
            if id(p) not in seen:
                seen.add(id(p))
                unique.append(p)
        return unique

    def __iter__(self) -> Iterator[Instruction]:
        return iter(list(self.instructions))

    def short_name(self) -> str:
        return self.name or f"bb{id(self) & 0xFFFF:x}"

    def __repr__(self) -> str:
        return f"<BasicBlock {self.short_name()} ({len(self.instructions)} insts)>"
