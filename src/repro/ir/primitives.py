"""Hardware channel descriptors shared by the IR primitives and the backend.

A :class:`Channel` is the compiler-side handle for one FIFO *buffer* of the
paper's architecture (Fig. 2): a named bundle of ``n_channels`` physical
FIFOs (one per consumer worker), each ``width``-bit wide and ``depth``
entries deep.  ``produce``/``consume`` instructions reference a Channel;
the hardware simulator materialises it as :class:`repro.hw.fifo.FifoBuffer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .types import Type

#: Paper Section 4.1: "we fixed the width of FIFO buffers to 32 bit, the
#: depth to 16 entries and the number of workers in the parallel stage to 4".
DEFAULT_FIFO_DEPTH = 16
DEFAULT_FIFO_WIDTH = 32


@dataclass
class Channel:
    """A multi-channel FIFO buffer connecting two pipeline stages.

    Attributes:
        channel_id: unique id within one pipelined loop.
        name: human-readable label (derived from the communicated value).
        elem_type: IR type of the communicated values.
        producer_stage: index of the stage whose workers push.
        consumer_stage: index of the stage whose workers pop.
        n_channels: number of physical FIFOs (== consumer worker count).
        depth: entries per FIFO.
        broadcast: True when every push is replicated to all channels
            (used for loop-exit conditions and other control broadcasts).
    """

    channel_id: int
    name: str
    elem_type: Type
    producer_stage: int
    consumer_stage: int
    n_channels: int = 1
    depth: int = DEFAULT_FIFO_DEPTH
    broadcast: bool = False

    #: Width in bits occupied on the wire; 64-bit values cost two slots of
    #: the 32-bit FIFOs the paper uses (accounted in the cost model).
    @property
    def width_bits(self) -> int:
        return max(8 * self.elem_type.size(), 1)

    @property
    def fifo_slots_per_value(self) -> int:
        return max(1, (self.width_bits + DEFAULT_FIFO_WIDTH - 1) // DEFAULT_FIFO_WIDTH)

    def __hash__(self) -> int:
        return hash(self.channel_id)


@dataclass
class ChannelPlan:
    """All channels of one pipelined loop, in creation order."""

    channels: list[Channel] = field(default_factory=list)
    _next_id: int = 0

    def new_channel(
        self,
        name: str,
        elem_type: Type,
        producer_stage: int,
        consumer_stage: int,
        n_channels: int = 1,
        depth: int = DEFAULT_FIFO_DEPTH,
        broadcast: bool = False,
    ) -> Channel:
        channel = Channel(
            channel_id=self._next_id,
            name=name,
            elem_type=elem_type,
            producer_stage=producer_stage,
            consumer_stage=consumer_stage,
            n_channels=n_channels,
            depth=depth,
            broadcast=broadcast,
        )
        self._next_id += 1
        self.channels.append(channel)
        return channel

    def by_id(self, channel_id: int) -> Channel:
        return self.channels[channel_id]

    def __iter__(self):
        return iter(self.channels)

    def __len__(self) -> int:
        return len(self.channels)
