"""Structural IR verifier.

Checks the invariants every pass relies on: each block is terminated, phi
nodes are grouped at block heads and agree with the predecessor list,
operand use-lists are consistent, and (optionally, when a dominator tree is
supplied by the caller) definitions dominate uses.
"""

from __future__ import annotations

from ..errors import IRError
from .basicblock import BasicBlock
from .function import Function
from .instructions import Instruction, Phi
from .module import Module
from .values import Argument, Constant, GlobalVariable, Value


def verify_module(module: Module) -> None:
    """Verify every defined function in the module."""

    for function in module.functions.values():
        if not function.is_declaration:
            verify_function(function)


def verify_function(function: Function) -> None:
    """Check the structural invariants of one function."""

    if not function.blocks:
        raise IRError(f"@{function.name}: function has no blocks")
    block_set = set(map(id, function.blocks))
    defined: set[int] = set()
    for block in function.blocks:
        _verify_block(function, block, block_set)
        for inst in block.instructions:
            defined.add(id(inst))
    _verify_operand_visibility(function, defined)
    _verify_use_lists(function)


def _verify_block(function: Function, block: BasicBlock, block_set: set[int]) -> None:
    where = f"@{function.name}/{block.short_name()}"
    if block.parent is not function:
        raise IRError(f"{where}: block parent pointer is stale")
    if block.terminator is None:
        raise IRError(f"{where}: block is not terminated")
    seen_non_phi = False
    for i, inst in enumerate(block.instructions):
        if inst.parent is not block:
            raise IRError(f"{where}: instruction #{i} has stale parent")
        if inst.is_terminator and i != len(block.instructions) - 1:
            raise IRError(f"{where}: terminator in the middle of the block")
        if isinstance(inst, Phi):
            if seen_non_phi:
                raise IRError(f"{where}: phi after non-phi instruction")
        else:
            seen_non_phi = True
    for succ in block.successors():
        if id(succ) not in block_set:
            raise IRError(f"{where}: branch to block outside the function")
    preds = block.predecessors()
    for phi in block.phis():
        if len(phi.incoming_blocks) != len(phi.operands):
            raise IRError(f"{where}: phi arm count mismatch")
        phi_preds = {id(b) for b in phi.incoming_blocks}
        real_preds = {id(p) for p in preds}
        if phi_preds != real_preds:
            names = sorted(b.short_name() for b in phi.incoming_blocks)
            actual = sorted(p.short_name() for p in preds)
            raise IRError(
                f"{where}: phi predecessors {names} != CFG predecessors {actual}"
            )


def _verify_operand_visibility(function: Function, defined: set[int]) -> None:
    args = {id(a) for a in function.args}
    for block in function.blocks:
        for inst in block.instructions:
            for op in inst.operands:
                if _is_external(op):
                    continue
                if isinstance(op, BasicBlock):
                    continue
                if isinstance(op, Instruction) and id(op) not in defined:
                    raise IRError(
                        f"@{function.name}: {inst.opcode} uses instruction "
                        f"defined in another function"
                    )
                if isinstance(op, Argument) and id(op) not in args:
                    raise IRError(
                        f"@{function.name}: {inst.opcode} uses a foreign argument"
                    )


def _is_external(op: Value) -> bool:
    return isinstance(op, (Constant, GlobalVariable, Function))


def _verify_use_lists(function: Function) -> None:
    for block in function.blocks:
        for inst in block.instructions:
            for op in inst.operands:
                if inst not in op.users:
                    raise IRError(
                        f"@{function.name}: use-list of {op.short_name()} "
                        f"is missing user {inst.opcode}"
                    )


def verify_dominance(function: Function, dominates) -> None:
    """Check defs dominate uses; ``dominates(a_block, b_block)`` is supplied
    by the dominator analysis to avoid a package cycle."""
    for block in function.blocks:
        for inst in block.instructions:
            if isinstance(inst, Phi):
                for value, pred in inst.incoming():
                    if isinstance(value, Instruction) and value.parent is not None:
                        if not dominates(value.parent, pred):
                            raise IRError(
                                f"@{function.name}: phi arm from "
                                f"{pred.short_name()} not dominated by def"
                            )
                continue
            for op in inst.operands:
                if not isinstance(op, Instruction) or op.parent is None:
                    continue
                if op.parent is block:
                    if block.instructions.index(op) >= block.instructions.index(inst):
                        raise IRError(
                            f"@{function.name}/{block.short_name()}: "
                            f"{inst.opcode} uses a later definition"
                        )
                elif not dominates(op.parent, block):
                    raise IRError(
                        f"@{function.name}: use of {op.short_name()} in "
                        f"{block.short_name()} not dominated by its def in "
                        f"{op.parent.short_name()}"
                    )
