"""IRBuilder: convenience layer for constructing instructions in order."""

from __future__ import annotations

from ..errors import IRError
from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    GEP,
    Alloca,
    BinaryOp,
    Call,
    Cast,
    CondBranch,
    FCmp,
    ICmp,
    Instruction,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from .types import BOOL, F32, F64, I8, I32, I64, FloatType, IntType, Type
from .values import Constant, Value


class IRBuilder:
    """Appends instructions to an insertion block, LLVM-style."""

    def __init__(self, block: BasicBlock | None = None) -> None:
        self.block = block

    def set_block(self, block: BasicBlock) -> None:
        self.block = block

    def _insert(self, inst: Instruction) -> Instruction:
        if self.block is None:
            raise IRError("IRBuilder has no insertion block")
        return self.block.append(inst)

    # -- constants -----------------------------------------------------------

    @staticmethod
    def const_int(value: int, type_: Type = I32) -> Constant:
        return Constant(type_, int(value))

    @staticmethod
    def const_bool(value: bool) -> Constant:
        return Constant(BOOL, 1 if value else 0)

    @staticmethod
    def const_float(value: float, type_: Type = F64) -> Constant:
        return Constant(type_, float(value))

    @staticmethod
    def null(pointer_type: Type) -> Constant:
        return Constant(pointer_type, 0)

    # -- arithmetic ----------------------------------------------------------

    def binop(self, op: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._insert(BinaryOp(op, lhs, rhs, name))

    def add(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("mul", lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("sdiv", lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("xor", lhs, rhs, name)

    def fadd(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("fadd", lhs, rhs, name)

    def fsub(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("fsub", lhs, rhs, name)

    def fmul(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("fmul", lhs, rhs, name)

    def fdiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("fdiv", lhs, rhs, name)

    def icmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._insert(ICmp(pred, lhs, rhs, name))

    def fcmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._insert(FCmp(pred, lhs, rhs, name))

    def select(self, cond: Value, if_true: Value, if_false: Value, name: str = "") -> Value:
        return self._insert(Select(cond, if_true, if_false, name))

    # -- memory --------------------------------------------------------------

    def alloca(self, allocated_type: Type, name: str = "") -> Value:
        return self._insert(Alloca(allocated_type, name))

    def load(self, pointer: Value, name: str = "") -> Value:
        return self._insert(Load(pointer, name))

    def store(self, value: Value, pointer: Value) -> Value:
        return self._insert(Store(value, pointer))

    def gep(self, base: Value, indices: list[Value], name: str = "") -> Value:
        return self._insert(GEP(base, indices, name))

    def struct_gep(self, base: Value, field_index: int, name: str = "") -> Value:
        """Address of field ``field_index`` of ``*base`` (a struct pointer)."""
        return self.gep(base, [self.const_int(0), self.const_int(field_index)], name)

    # -- control flow ----------------------------------------------------------

    def jump(self, target: BasicBlock) -> Value:
        return self._insert(Jump(target))

    def cond_branch(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> Value:
        return self._insert(CondBranch(cond, if_true, if_false))

    def phi(self, type_: Type, name: str = "") -> Phi:
        if self.block is None:
            raise IRError("IRBuilder has no insertion block")
        node = Phi(type_, name)
        self.block.insert(self.block.first_non_phi_index(), node)
        return node

    def call(self, callee: Function, args: list[Value], name: str = "") -> Value:
        return self._insert(Call(callee, args, name))

    def ret(self, value: Value | None = None) -> Value:
        return self._insert(Ret(value))

    # -- casts -----------------------------------------------------------------

    def cast(self, op: str, value: Value, to_type: Type, name: str = "") -> Value:
        if value.type == to_type:
            return value
        return self._insert(Cast(op, value, to_type, name))

    def int_cast(self, value: Value, to_type: IntType, name: str = "") -> Value:
        """Signed integer resize (sext/trunc as needed)."""
        if value.type == to_type:
            return value
        assert isinstance(value.type, IntType)
        if value.type.bits < to_type.bits:
            op = "zext" if value.type.bits == 1 else "sext"
            return self.cast(op, value, to_type, name)
        return self.cast("trunc", value, to_type, name)

    def to_double(self, value: Value, name: str = "") -> Value:
        if value.type == F64:
            return value
        if value.type == F32:
            return self.cast("fpext", value, F64, name)
        return self.cast("sitofp", value, F64, name)
