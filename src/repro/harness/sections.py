"""Figure-1-style section annotation: label a loop's instructions R/P/S.

The paper's Fig. 1(a) and appendix figures annotate source lines with the
section kind CGPA assigns (Replicable / Parallel / Sequential).  This
utility produces the same view for any compiled loop — per instruction and
aggregated per basic block — which is the most useful debugging surface
when adopting CGPA on new code.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.pdg import ProgramDependenceGraph, SccClass
from ..ir.printer import print_instruction


@dataclass
class SectionLine:
    """One annotated instruction: its block, text and section kind."""

    block: str
    text: str
    section: str  # 'P' | 'R' | 'S'
    scc_index: int
    replicated: bool


def annotate_sections(pdg: ProgramDependenceGraph, spec=None) -> list[SectionLine]:
    """Annotate every loop instruction with its classification.

    With a ``PipelineSpec`` the *placement* is reported too: replicable
    SCCs show whether the partitioner actually duplicated them.
    """
    lines: list[SectionLine] = []
    letter = {
        SccClass.PARALLEL: "P",
        SccClass.REPLICABLE: "R",
        SccClass.SEQUENTIAL: "S",
    }
    for block in pdg.loop.blocks:
        for inst in block.instructions:
            scc = pdg.scc_of(inst)
            replicated = bool(spec and spec.is_replicated(inst))
            lines.append(
                SectionLine(
                    block=block.short_name(),
                    text=print_instruction(inst),
                    section=letter[scc.classification],
                    scc_index=scc.index,
                    replicated=replicated,
                )
            )
    return lines


def format_sections(lines: list[SectionLine]) -> str:
    """Render section annotations grouped by basic block."""

    out = []
    current_block = None
    for line in lines:
        if line.block != current_block:
            out.append(f"{line.block}:")
            current_block = line.block
        marker = line.section + ("*" if line.replicated else " ")
        out.append(f"  [{marker}] {line.text}")
    out.append("")
    out.append("[P] parallel   [R] replicable   [S] sequential   "
               "* = duplicated into workers")
    return "\n".join(out)


def section_summary(lines: list[SectionLine]) -> dict[str, int]:
    """Count instructions per section kind (P/R/S)."""

    counts = {"P": 0, "R": 0, "S": 0}
    for line in lines:
        counts[line.section] += 1
    return counts
