"""Benchmark harness: run one kernel on every backend and collect metrics.

Backends (the three data points of Section 4.2, plus the P2 variant):

* ``mips``    — the soft-core cost model (:mod:`repro.hw.mips_core`);
* ``legup``   — LegUp-style HLS: the unmodified kernel as one FSM worker;
* ``cgpa-p1`` — the CGPA pipeline with the paper's default replication
  heuristic;
* ``cgpa-p2`` — replicable sections forced into the parallel workers
  (only for kernels where Table 2 lists a P2 partition).

Every backend consumes a bit-identical workload (built by the kernel's
``setup`` under the functional interpreter) and is validated against the
kernel's checksum function — the reproduction of the paper's statement
that every generated design passed verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cost import (
    AreaReport,
    PowerReport,
    accelerator_area,
    function_aluts,
    power_report,
    single_module_area,
)
from ..errors import CgpaError
from ..frontend import compile_c
from ..hw import AcceleratorSystem, DirectMappedCache, SimReport, run_on_mips
from ..interp import Interpreter, Memory, to_unsigned
from ..ir import I32
from ..kernels import KARGS_GLOBAL, KernelSpec
from ..pipeline import CompiledPipeline, ReplicationPolicy, cgpa_compile
from ..telemetry.events import TraceSink
from ..transforms import optimize_module

DEFAULT_BACKENDS = ("mips", "legup", "cgpa-p1")


@dataclass
class BackendResult:
    """Metrics from one backend run of one kernel."""

    backend: str
    cycles: int
    checksum: float
    return_value: int | float | None
    signature: str | None = None
    area: AreaReport | None = None
    power: PowerReport | None = None
    sim: SimReport | None = None
    mips_instructions: int | None = None

    @property
    def aluts(self) -> int | None:
        return self.area.total_aluts if self.area else None

    @property
    def power_mw(self) -> float | None:
        return self.power.power_mw if self.power else None

    @property
    def energy_uj(self) -> float | None:
        return self.power.energy_uj if self.power else None


@dataclass
class KernelRun:
    """All backend results for one kernel, cross-validated."""

    spec: KernelSpec
    results: dict[str, BackendResult] = field(default_factory=dict)

    def speedup(self, backend: str, baseline: str = "mips") -> float:
        return self.results[baseline].cycles / self.results[backend].cycles

    def energy_efficiency(self, backend: str) -> float | None:
        """Kernel work (thousands of dynamic IR ops) per microjoule."""
        result = self.results[backend]
        mips = self.results.get("mips")
        if result.energy_uj is None or mips is None or not mips.mips_instructions:
            return None
        return (mips.mips_instructions / 1e3) / result.energy_uj

    def validate(self) -> None:
        checksums = {
            name: result.checksum for name, result in self.results.items()
        }
        reference = next(iter(checksums.values()))
        for name, value in checksums.items():
            if not _close(value, reference):
                raise CgpaError(
                    f"{self.spec.name}: backend {name} checksum {value} != "
                    f"{reference}"
                )
        returns = {
            name: r.return_value
            for name, r in self.results.items()
            if r.return_value is not None
        }
        values = list(returns.values())
        for name, value in returns.items():
            if not _close(value, values[0]):
                raise CgpaError(
                    f"{self.spec.name}: backend {name} returned {value} != "
                    f"{values[0]}"
                )


def _close(a, b, rel=1e-9) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        scale = max(abs(float(a)), abs(float(b)), 1.0)
        return abs(float(a) - float(b)) <= rel * scale
    return a == b


def setup_workload(module, spec: KernelSpec):
    """Run the kernel's setup functionally; returns (memory, globals, args).

    Public API: the DSE evaluator, the fault sweeps, the fleet executor
    and the benchmarks all build their workload images through this one
    function (the :mod:`repro.fleet` executor additionally memoizes and
    clones the result so each process pays for setup once per kernel).
    """
    interp = Interpreter(module)
    interp.call(spec.setup_function, list(spec.setup_args))
    kargs_addr = interp.global_addresses[KARGS_GLOBAL]
    args = [
        to_unsigned(interp.memory.load(kargs_addr + 4 * i, I32), 32)
        for i in range(spec.n_kernel_args)
    ]
    return interp.memory, interp.global_addresses, args


#: Deprecated alias (pre-public name); importers should use
#: :func:`setup_workload`.
_setup_workload = setup_workload


def _checksum(module, memory, global_addresses, spec: KernelSpec) -> float:
    interp = Interpreter(module, memory, global_addresses=global_addresses)
    return interp.call(spec.check_function, [])


def run_backend(
    spec: KernelSpec,
    backend: str,
    n_workers: int = 4,
    fifo_depth: int = 16,
    cache_kwargs: dict | None = None,
    sink: TraceSink | None = None,
    engine: str = "event",
    max_cycles: int | None = None,
) -> BackendResult:
    """Compile, simulate and score one kernel on one backend.

    ``sink`` attaches a telemetry receiver (e.g. a
    :class:`~repro.telemetry.events.MemoryTraceSink`) to the simulated
    accelerator — only meaningful for the hardware backends (``legup``,
    ``cgpa-*``); the MIPS cost model has no cycle-level FSM to trace.

    ``engine`` selects the simulator clock loop (``"event"`` skip-ahead
    or the ``"lockstep"`` oracle); both report identical cycle counts.

    ``max_cycles`` caps the simulated clock; a run that exceeds it raises
    :class:`~repro.errors.CycleBudgetExceeded` (hardware backends only —
    the MIPS cost model executes a finite instruction trace).
    """
    cache_kwargs = dict(cache_kwargs or {})
    if backend == "mips":
        module = compile_c(spec.source, spec.name)
        optimize_module(module)
        memory, globals_, args = setup_workload(module, spec)
        mips = run_on_mips(
            module, spec.measure_entry, args, memory,
            cache=DirectMappedCache(**cache_kwargs),
            global_addresses=globals_,
        )
        checksum = _checksum(module, memory, globals_, spec)
        return BackendResult(
            backend="mips",
            cycles=mips.cycles,
            checksum=checksum,
            return_value=mips.return_value,
            mips_instructions=mips.instructions,
        )

    if backend == "legup":
        module = compile_c(spec.source, spec.name)
        optimize_module(module)
        memory, globals_, args = setup_workload(module, spec)
        cache_kwargs.setdefault("ports", 8)
        system_kwargs = {}
        if max_cycles is not None:
            system_kwargs["max_cycles"] = max_cycles
        system = AcceleratorSystem(
            module, memory,
            cache=DirectMappedCache(**cache_kwargs),
            global_addresses=globals_,
            sink=sink,
            engine=engine,
            **system_kwargs,
        )
        sim = system.run(spec.measure_entry, args)
        area = single_module_area(module.get_function(spec.measure_entry))
        functions = list(module.functions.values())
        power = power_report(sim, area, functions)
        checksum = _checksum(module, memory, globals_, spec)
        return BackendResult(
            backend="legup",
            cycles=sim.cycles,
            checksum=checksum,
            return_value=sim.return_value,
            area=area,
            power=power,
            sim=sim,
        )

    if backend in ("cgpa-p1", "cgpa-p2", "cgpa-none"):
        policy = {
            "cgpa-p1": ReplicationPolicy.P1,
            "cgpa-p2": ReplicationPolicy.P2,
            "cgpa-none": ReplicationPolicy.NONE,
        }[backend]
        module = compile_c(spec.source, spec.name)
        optimize_module(module)
        shapes = spec.shapes_for(module)
        compiled = cgpa_compile(
            module,
            spec.accel_function,
            shapes=shapes,
            policy=policy,
            n_workers=n_workers,
            fifo_depth=fifo_depth,
        )
        memory, globals_, args = setup_workload(compiled.module, spec)
        cache_kwargs.setdefault("ports", 8)
        system_kwargs = {}
        if max_cycles is not None:
            system_kwargs["max_cycles"] = max_cycles
        system = AcceleratorSystem(
            compiled.module,
            memory,
            channels=compiled.result.channels,
            cache=DirectMappedCache(**cache_kwargs),
            global_addresses=globals_,
            sink=sink,
            engine=engine,
            **system_kwargs,
        )
        sim = system.run(spec.measure_entry, args)
        area = cgpa_area(compiled)
        functions = list(compiled.module.functions.values())
        power = power_report(sim, area, functions)
        checksum = _checksum(compiled.module, memory, globals_, spec)
        return BackendResult(
            backend=backend,
            cycles=sim.cycles,
            checksum=checksum,
            return_value=sim.return_value,
            signature=compiled.signature,
            area=area,
            power=power,
            sim=sim,
        )

    raise CgpaError(f"unknown backend {backend!r}")


def cgpa_area(compiled: CompiledPipeline) -> AreaReport:
    """Area of one compiled CGPA pipeline (workers + wrapper + FIFOs).

    Public because the design-space explorer (:mod:`repro.dse`) scores
    compiled pipelines outside the backend runner.
    """
    area = accelerator_area(
        compiled.result.tasks,
        [stage.n_workers for stage in compiled.spec.stages],
        compiled.result.channels,
    )
    # The wrapper (the rewritten parent, possibly with callers above it)
    # is hardware too — a small sequential module.
    parent = compiled.result.parent
    area.worker_aluts[f"{parent.name}(wrapper)"] = function_aluts(parent)
    return area


def run_kernel(
    spec: KernelSpec,
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    n_workers: int = 4,
    fifo_depth: int = 16,
    cache_kwargs: dict | None = None,
    validate: bool = True,
    engine: str = "event",
    max_cycles: int | None = None,
) -> KernelRun:
    """Run one kernel on all requested backends and cross-validate."""
    run = KernelRun(spec)
    for backend in backends:
        if backend == "cgpa-p2" and not spec.supports_p2:
            continue
        run.results[backend] = run_backend(
            spec, backend, n_workers=n_workers, fifo_depth=fifo_depth,
            cache_kwargs=cache_kwargs, engine=engine, max_cycles=max_cycles,
        )
    if validate:
        run.validate()
    return run
