"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.harness                # everything (Table 2/3, Fig 4, tradeoff)
    python -m repro.harness --kernel em3d  # one kernel, all backends
    python -m repro.harness --scalability  # the Appendix B.1 worker sweep
    python -m repro.harness trace ks       # traced run: Chrome trace + VCD
                                           # + bottleneck analysis on disk
    python -m repro.harness dse ks         # design-space sweep + Pareto
                                           # frontier + JSON on disk
    python -m repro.harness faults ks      # resilience sweep: seeded fault
                                           # plans + watchdog diagnosis
    python -m repro.harness rtl ks         # co-simulate the emitted
                                           # Verilog against the oracle
    python -m repro.harness serve          # long-lived compile/simulate/
                                           # explore HTTP service
    python -m repro.harness obs query      # query the run-record spine
    python -m repro.harness obs diff A B   # regression diff two journals
    python -m repro.harness obs report     # render the HTML dashboard

The ``trace``/``dse``/``faults``/``rtl`` subcommands persist their
result JSON in the content-addressed artifact store (default
``./.cgpa-store``, the same store the service uses), with the
historical output paths kept as symlinks/copies of the stored artifact.
Every run-producing path additionally journals a versioned
:class:`~repro.obs.RunEnvelope` into ``<store>/envelopes.jsonl``; the
``obs`` subcommand queries, diffs and renders that journal.

Every subcommand turns a simulator or compiler failure
(:class:`~repro.errors.CgpaError`) into a one-line ``error:`` diagnosis
on stderr and exit status 1 — no tracebacks for model-level failures.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from ..kernels import ALL_KERNELS, KERNELS_BY_NAME
from ..telemetry import (
    MemoryTraceSink,
    analyze,
    dump_vcd,
)
from .experiments import figure4, run_all_kernels, scalability, table2, table3, tradeoff
from .report import (
    format_bottlenecks,
    format_figure4,
    format_scalability,
    format_stall_breakdown,
    format_table2,
    format_table3,
    format_tradeoff,
)
from .runner import run_backend, run_kernel


def _positive_int(text: str) -> int:
    """argparse type for knobs that must be >= 1 (workers, FIFO depth...).

    Turns a bad value into a one-line ``argparse`` usage error instead of
    a deep traceback out of the partitioner or simulator.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _csv_positive_ints(text: str) -> list[int]:
    """argparse type: comma-separated list of >= 1 integers."""
    return [_positive_int(item) for item in text.split(",") if item]


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    """``--store``: where result artifacts are content-addressed."""
    parser.add_argument(
        "--store", type=pathlib.Path, default=pathlib.Path(".cgpa-store"),
        metavar="DIR",
        help="content-addressed artifact store directory, shared with "
        "`repro.harness serve` and the DSE result cache "
        "(default: ./.cgpa-store)",
    )


def _envelope_writer(store_root: pathlib.Path):
    """The run-record writer for one store root.

    All subcommand result writes route through
    :meth:`repro.obs.emit.EnvelopeWriter.publish_run`: the legacy
    artifact (and its historical mirror path) is written exactly as
    before, and a :class:`~repro.obs.RunEnvelope` lands in the store's
    ``envelopes.jsonl`` journal as the canonical run record.
    """
    from ..obs.emit import EnvelopeWriter

    return EnvelopeWriter(store_root)


def dse_main(argv: list[str]) -> int:
    """``python -m repro.harness dse <kernel>`` — design-space sweep."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness dse",
        description="Explore the accelerator knob space for one kernel, "
        "print the Pareto frontier over (cycles, total_aluts, energy_uj) "
        "and write the full sweep as JSON.  Results are cached on disk, "
        "so repeated sweeps only simulate new points.",
    )
    parser.add_argument(
        "kernel", choices=sorted(KERNELS_BY_NAME),
        help="kernel whose design space to explore",
    )
    parser.add_argument(
        "--strategy", default="grid",
        choices=["grid", "random", "hillclimb"],
        help="exhaustive grid, seeded random sample, or greedy hill-climb "
        "(default: grid)",
    )
    parser.add_argument(
        "--policies", default=None,
        help="comma-separated replication policies to sweep "
        "(default: p1,none plus p2 where Table 2 lists one)",
    )
    parser.add_argument(
        "--workers-list", type=_csv_positive_ints, default=[1, 2, 4],
        metavar="N,N,...",
        help="parallel-stage worker counts to sweep (default: 1,2,4)",
    )
    parser.add_argument(
        "--fifo-depths", type=_csv_positive_ints, default=[4, 16],
        metavar="N,N,...",
        help="FIFO depths to sweep (default: 4,16)",
    )
    parser.add_argument(
        "--cache-lines", type=_csv_positive_ints, default=[512],
        metavar="N,N,...",
        help="cache line counts to sweep; powers of two (default: 512)",
    )
    parser.add_argument(
        "--cache-ports", type=_csv_positive_ints, default=[8],
        metavar="N,N,...",
        help="cache port counts to sweep (default: 8)",
    )
    parser.add_argument(
        "--caches", default="shared", choices=["shared", "private", "both"],
        help="cache organisations to sweep (default: shared)",
    )
    parser.add_argument(
        "--samples", type=_positive_int, default=8,
        help="points to draw with --strategy random (default: 8)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="random-sample seed (default: 0)",
    )
    parser.add_argument(
        "--max-evals", type=_positive_int, default=24,
        help="evaluation budget for --strategy hillclimb (default: 24)",
    )
    parser.add_argument(
        "--objective", default="cycles",
        choices=["cycles", "total_aluts", "energy_uj"],
        help="hill-climb objective to minimise (default: cycles)",
    )
    parser.add_argument(
        "--processes", type=_positive_int, default=1,
        help="pool size for parallel evaluation (default: 1); the frontier "
        "is byte-identical at any pool size",
    )
    parser.add_argument(
        "--max-cycles", type=_positive_int, default=None,
        help="per-point simulated-cycle budget; points exceeding it are "
        "recorded as status=timeout (default: 50M)",
    )
    parser.add_argument(
        "--engine", default="event", choices=["event", "lockstep", "specialized"],
        help="simulator clock loop (default: event)",
    )
    parser.add_argument(
        "--cache-dir", type=pathlib.Path, default=pathlib.Path(".dse-cache"),
        help="on-disk result cache location (default: ./.dse-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="evaluate every point fresh, and do not store results",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted sweep: points already persisted to "
        "the result cache (checkpointed per shard as they complete) are "
        "replayed instead of re-simulated; the final report is "
        "byte-identical to an uninterrupted run",
    )
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=pathlib.Path("benchmarks/results"),
        help="directory for the sweep JSON mirror (default: "
        "benchmarks/results; the canonical copy lands in --store)",
    )
    _add_store_argument(parser)
    args = parser.parse_args(argv)
    if args.resume and args.no_cache:
        parser.error("--resume needs the result cache; drop --no-cache")

    from ..dse import (
        DEFAULT_EVAL_MAX_CYCLES,
        ConfigSpace,
        Explorer,
        GridStrategy,
        HillClimbStrategy,
        RandomStrategy,
        ResultCache,
    )
    from ..errors import CgpaError
    from .report import format_pareto

    spec = KERNELS_BY_NAME[args.kernel]
    if args.policies is not None:
        policies = [p for p in args.policies.split(",") if p]
    else:
        policies = ["p1", "none"] + (["p2"] if spec.supports_p2 else [])
    private = {"shared": [False], "private": [True], "both": [False, True]}
    try:
        space = ConfigSpace(
            policies=policies,
            n_workers=args.workers_list,
            fifo_depths=args.fifo_depths,
            private_caches=private[args.caches],
            cache_lines=args.cache_lines,
            cache_ports=args.cache_ports,
        )
    except CgpaError as exc:
        parser.error(str(exc))

    strategy = {
        "grid": lambda: GridStrategy(),
        "random": lambda: RandomStrategy(args.samples, seed=args.seed),
        "hillclimb": lambda: HillClimbStrategy(
            objective=args.objective, max_evals=args.max_evals
        ),
    }[args.strategy]()
    writer = _envelope_writer(args.store)
    explorer = Explorer(
        spec,
        space,
        cache=None if args.no_cache else ResultCache(args.cache_dir),
        processes=args.processes,
        max_cycles=args.max_cycles or DEFAULT_EVAL_MAX_CYCLES,
        engine=args.engine,
        envelopes=writer,
    )
    print(f"Exploring {space.size}-point space for {spec.name} "
          f"({args.strategy} strategy, {args.processes} process(es))...")
    try:
        sweep = explorer.run(strategy)
    finally:
        explorer.close()
    if args.resume:
        from ..obs.emit import fleet_envelope

        detail = (
            f"replayed {sweep.cache_hits} point(s) from cache, "
            f"computed {sweep.cache_misses}"
        )
        writer.write(fleet_envelope(
            {"kind": "resume", "task_index": None,
             "attempt": sweep.cache_hits, "detail": detail},
            extra={"subsystem": "dse", "kernel": spec.name},
        ))
        print(f"resumed: {detail}", file=sys.stderr)

    from ..service.contracts import JobRequest

    request = JobRequest.make("dse", spec.name, options={
        "strategy": args.strategy,
        "policies": policies,
        "n_workers": args.workers_list,
        "fifo_depths": args.fifo_depths,
        "private_caches": private[args.caches],
        "cache_lines": args.cache_lines,
        "cache_ports": args.cache_ports,
        "samples": args.samples,
        "seed": args.seed,
        "max_evals": args.max_evals,
        "objective": args.objective,
        "engine": args.engine,
        "max_cycles": args.max_cycles or DEFAULT_EVAL_MAX_CYCLES,
    })
    from ..obs.emit import sweep_envelope

    out_path = args.out / f"dse_{spec.name}_{args.strategy}.json"
    stored = writer.publish_run(
        request.key, {"kind": "dse", **sweep.to_json_dict()},
        sweep_envelope(sweep, engine=args.engine, config_hash=request.key),
        mirror=out_path,
    )
    print()
    print(format_pareto(sweep))
    print()
    print(f"sweep took {sweep.elapsed_s:.1f}s; "
          f"artifact {request.key[:12]}… -> {stored} (mirror: {out_path})")
    return 0


def faults_main(argv: list[str]) -> int:
    """``python -m repro.harness faults <kernel>`` — resilience sweep."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness faults",
        description="Inject seeded fault plans (memory latency, cache-port "
        "storms, FIFO back-pressure, worker hangs, value corruption) into "
        "one kernel's pipeline.  Timing faults must leave liveouts "
        "bit-identical to the interpreter oracle; hangs must be diagnosed "
        "by the deadlock watchdog; corruption detection is reported.  "
        "Deterministic for a given (kernel, seed); the report is "
        "byte-identical across both simulator engines.",
    )
    parser.add_argument(
        "kernel", choices=sorted(KERNELS_BY_NAME),
        help="kernel to stress",
    )
    parser.add_argument(
        "--plans", type=_positive_int, default=8,
        help="fault plans per class (timing/hang/corruption; default: 8)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="master seed deriving every plan's schedule (default: 0)",
    )
    parser.add_argument(
        "--engine", default="event", choices=["event", "lockstep", "specialized"],
        help="simulator clock loop (default: event); the report is "
        "byte-identical under either",
    )
    parser.add_argument(
        "--workers", type=_positive_int, default=4,
        help="parallel-stage worker count (paper default: 4)",
    )
    parser.add_argument(
        "--fifo-depth", type=_positive_int, default=16,
        help="FIFO entries per channel (paper default: 16)",
    )
    parser.add_argument(
        "--max-cycles", type=_positive_int, default=None,
        help="per-plan simulated-cycle budget (default: 64x the fault-free "
        "baseline); exceeding it records the plan as outcome=timeout",
    )
    parser.add_argument(
        "--processes", type=_positive_int, default=1,
        help="pool size for parallel plan execution (default: 1); the "
        "report is byte-identical at any pool size",
    )
    parser.add_argument(
        "--json", type=pathlib.Path, default=None, metavar="PATH",
        help="also mirror the full sweep (plans + outcomes) JSON at PATH "
        "(the canonical copy lands in --store)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted sweep: plan outcomes already "
        "checkpointed to --store are replayed instead of re-simulated; "
        "the final report is byte-identical to an uninterrupted run",
    )
    _add_store_argument(parser)
    args = parser.parse_args(argv)

    from ..faults.sweep import resilience_sweep

    spec = KERNELS_BY_NAME[args.kernel]
    writer = _envelope_writer(args.store)
    report = resilience_sweep(
        spec,
        n_plans=args.plans,
        seed=args.seed,
        engine=args.engine,
        n_workers=args.workers,
        fifo_depth=args.fifo_depth,
        max_cycles=args.max_cycles,
        processes=args.processes,
        store=writer.store,
        resume=args.resume,
        envelopes=writer,
    )
    print(report.format())
    if args.resume:
        # stderr: resume chatter must not perturb the byte-identical
        # stdout contract (the CI smoke diffs stdout across engines).
        print(f"resumed: {report.replayed}/{len(report.records)} plan(s) "
              f"replayed from checkpoints", file=sys.stderr)

    from ..service.contracts import JobRequest

    request = JobRequest.make("faults", spec.name, options={
        "plans": args.plans,
        "seed": args.seed,
        "engine": args.engine,
        "n_workers": args.workers,
        "fifo_depth": args.fifo_depth,
        "max_cycles": args.max_cycles,
    })
    from ..obs.emit import faults_envelope

    stored = writer.publish_run(
        request.key, {"kind": "faults", **report.to_dict()},
        faults_envelope(report, engine=args.engine, config_hash=request.key),
        mirror=args.json,
    )
    # stderr: stdout must stay byte-identical across engines (the CI
    # smoke diffs it), and the content key covers the engine option.
    print(f"artifact {request.key[:12]}… -> {stored}"
          + (f" (mirror: {args.json})" if args.json is not None else ""),
          file=sys.stderr)
    return 0


def rtl_main(argv: list[str]) -> int:
    """``python -m repro.harness rtl <kernel>`` — RTL co-simulation."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness rtl",
        description="Execute one kernel's emitted Verilog worker modules "
        "in the bundled two-state simulator (repro.vsim) and diff finish-"
        "time live-outs, FIFO traffic and the final memory image, bit for "
        "bit, against the interpreter oracle.  Exit status 1 on any "
        "mismatch.",
    )
    parser.add_argument(
        "kernel", choices=sorted(KERNELS_BY_NAME),
        help="kernel to co-simulate",
    )
    parser.add_argument(
        "--policy", default="p1", choices=["p1", "p2", "none"],
        help="replication policy to compile with (default: p1)",
    )
    parser.add_argument(
        "--workers", type=_positive_int, default=2,
        help="parallel-stage worker count (default: 2; every worker "
        "module is simulated gate-for-gate, so co-simulation favours "
        "small fleets)",
    )
    parser.add_argument(
        "--fifo-depth", type=_positive_int, default=16,
        help="FIFO entries per channel (default: 16)",
    )
    parser.add_argument(
        "--setup-args", type=_csv_positive_ints, default=None,
        metavar="N,N,...",
        help="workload-size arguments for the kernel's setup function "
        "(default: a scaled-down smoke workload)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="use the paper-scale workload instead of the smoke scale "
        "(slow: every clock edge is interpreted in Python)",
    )
    parser.add_argument(
        "--max-cycles", type=_positive_int, default=None,
        help="per-round simulated-cycle budget (default: 500k)",
    )
    parser.add_argument(
        "--emit-dir", type=pathlib.Path, default=None, metavar="DIR",
        help="also write each round's Verilog modules plus oracle-"
        "scripted testbenches into DIR",
    )
    _add_store_argument(parser)
    args = parser.parse_args(argv)

    from ..vsim.cosim import run_rtl_cosim

    spec = KERNELS_BY_NAME[args.kernel]
    setup_args = args.setup_args
    if setup_args is None and args.full:
        setup_args = list(spec.setup_args)
    kwargs = {}
    if args.max_cycles is not None:
        kwargs["max_cycles"] = args.max_cycles
    report = run_rtl_cosim(
        spec,
        policy=args.policy,
        n_workers=args.workers,
        fifo_depth=args.fifo_depth,
        setup_args=setup_args,
        emit_dir=args.emit_dir,
        **kwargs,
    )
    print(report.format())

    from ..obs.emit import cosim_envelope
    from ..service.contracts import JobRequest

    options = {
        "policy": args.policy,
        "n_workers": args.workers,
        "fifo_depth": args.fifo_depth,
        "setup_args": setup_args,
    }
    if args.max_cycles is not None:
        options["max_cycles"] = args.max_cycles
    request = JobRequest.make("rtl", spec.name, options=options)
    stored = _envelope_writer(args.store).publish_run(
        request.key, {"kind": "rtl", **report.to_dict()},
        cosim_envelope(report, config_hash=request.key),
    )
    print(f"artifact {request.key[:12]}… -> {stored}", file=sys.stderr)
    return 0 if report.ok else 1


def trace_main(argv: list[str]) -> int:
    """``python -m repro.harness trace <kernel>`` — traced simulation."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness trace",
        description="Run one kernel with cycle tracing enabled and write "
        "a chrome://tracing JSON, a VCD waveform, and a stall/bottleneck "
        "analysis.",
    )
    parser.add_argument(
        "kernel", choices=sorted(KERNELS_BY_NAME),
        help="kernel to trace",
    )
    parser.add_argument(
        "--backend", default="cgpa-p1",
        choices=["legup", "cgpa-p1", "cgpa-p2", "cgpa-none"],
        help="hardware backend to trace (default: cgpa-p1)",
    )
    parser.add_argument(
        "--workers", type=_positive_int, default=4,
        help="parallel-stage worker count (paper default: 4)",
    )
    parser.add_argument(
        "--fifo-depth", type=_positive_int, default=16,
        help="FIFO entries per channel (paper default: 16)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("traces"),
        help="output directory (default: ./traces); the chrome trace "
        "JSON there is a mirror of the --store artifact",
    )
    _add_store_argument(parser)
    parser.add_argument(
        "--engine", default="event", choices=["event", "lockstep", "specialized"],
        help="simulator clock loop: event-driven skip-ahead (default) or "
        "the tick-every-cycle lockstep oracle; cycle counts are identical",
    )
    parser.add_argument(
        "--max-cycles", type=_positive_int, default=None,
        help="simulated-cycle budget; a run exceeding it fails with a "
        "one-line CycleBudgetExceeded diagnosis (default: 500M)",
    )
    args = parser.parse_args(argv)

    spec = KERNELS_BY_NAME[args.kernel]
    sink = MemoryTraceSink()
    result = run_backend(
        spec, args.backend, n_workers=args.workers,
        fifo_depth=args.fifo_depth, sink=sink, engine=args.engine,
        max_cycles=args.max_cycles,
    )
    sim = result.sim
    assert sim is not None  # hardware backends always carry a SimReport

    args.out.mkdir(parents=True, exist_ok=True)
    stem = f"{spec.name}_{args.backend}"
    trace_path = args.out / f"{stem}.trace.json"
    vcd_path = args.out / f"{stem}.vcd"
    analysis_path = args.out / f"{stem}.bottleneck.txt"

    from ..cost import COST_MODEL_VERSION
    from ..service.store import content_key
    from ..telemetry.chrome_trace import to_chrome_trace

    # Traces have no JobRequest kind (they are a CLI-only artifact), but
    # they are content-addressed with the same discipline: everything
    # that determines the trace participates in the key.
    trace_key = content_key({
        "kind": "trace",
        "cost_model": COST_MODEL_VERSION,
        "kernel": spec.name,
        "source": spec.source,
        "backend": args.backend,
        "n_workers": args.workers,
        "fifo_depth": args.fifo_depth,
        "engine": args.engine,
        "max_cycles": args.max_cycles,
    })
    from ..obs.emit import sim_envelope

    _envelope_writer(args.store).publish_run(
        trace_key, to_chrome_trace(sink),
        sim_envelope(
            sim, kernel=spec.name, engine=args.engine,
            config_hash=trace_key, backend=args.backend,
            area=result.area, power=result.power,
        ),
        mirror=trace_path,
    )
    dump_vcd(sink, str(vcd_path))
    analysis = analyze(sim, sink)
    analysis_text = (
        format_stall_breakdown(sim, kernel=spec.name)
        + "\n\n"
        + format_bottlenecks(analysis)
    )
    analysis_path.write_text(analysis_text + "\n")

    print(f"{spec.name} on {args.backend}: {sim.cycles} cycles "
          f"({sim.invocations} invocations)")
    print(f"  chrome trace : {trace_path}  (open in chrome://tracing)")
    print(f"  vcd waveform : {vcd_path}")
    print(f"  analysis     : {analysis_path}")
    print(f"  artifact     : {trace_key[:12]}… in {args.store}")
    print()
    print(analysis_text)
    return 0


def serve_main(argv: list[str]) -> int:
    """``python -m repro.harness serve`` — the long-lived service."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness serve",
        description="Run the CGPA toolchain as an HTTP service: submit "
        "compile/simulate/dse/faults/rtl jobs (kernel + config in, job id "
        "out), poll status, fetch results.  Results are content-addressed "
        "in the artifact store, identical in-flight requests are coalesced "
        "onto one job, and each client is token-bucket rate limited.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=8337,
        help="bind port; 0 picks an ephemeral port (default: 8337)",
    )
    parser.add_argument(
        "--workers", type=_positive_int, default=2,
        help="job worker threads draining the queue (default: 2)",
    )
    parser.add_argument(
        "--processes", type=_positive_int, default=1,
        help="fleet pool processes executing jobs (default: 1 = run jobs "
        "on the worker threads); >1 sidesteps the GIL for simulation-"
        "bound workloads",
    )
    _add_store_argument(parser)
    parser.add_argument(
        "--lru-entries", type=int, default=512,
        help="artifacts kept warm in memory above the disk store "
        "(default: 512; 0 disables the warm layer)",
    )
    parser.add_argument(
        "--rate", type=float, default=32.0, metavar="PER_S",
        help="sustained per-client request rate (default: 32/s)",
    )
    parser.add_argument(
        "--burst", type=float, default=64.0, metavar="TOKENS",
        help="per-client burst budget (token-bucket capacity, default: 64)",
    )
    parser.add_argument(
        "--job-deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline per job; an overrunning job ends in "
        "status=timeout instead of wedging a worker (default: none)",
    )
    parser.add_argument(
        "--job-retries", type=int, default=1, metavar="N",
        help="retries for a job whose pool worker crashed, on a "
        "respawned pool (default: 1)",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=5.0, metavar="SECONDS",
        help="how long shutdown waits for in-flight jobs while answering "
        "new submissions with 503 + Retry-After (default: 5)",
    )
    args = parser.parse_args(argv)

    from ..service.app import ServiceConfig, run_server

    run_server(ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        processes=args.processes,
        store_root=str(args.store),
        lru_entries=args.lru_entries,
        rate_capacity=args.burst,
        rate_refill_per_s=args.rate,
        job_deadline_s=args.job_deadline,
        job_retries=args.job_retries,
        drain_timeout=args.drain_timeout,
    ))
    return 0


def _journal_kernel_run(args, spec, run) -> None:
    """Persist one ``sim`` envelope per hardware backend of a kernel run."""
    from ..cost import COST_MODEL_VERSION
    from ..obs.emit import sim_envelope
    from ..service.store import content_key

    writer = _envelope_writer(args.store)
    for backend, result in run.results.items():
        if result.sim is None:  # cost-model-only backends (mips/legup)
            continue
        config_hash = content_key({
            "kind": "sim",
            "cost_model": COST_MODEL_VERSION,
            "kernel": spec.name,
            "source": spec.source,
            "backend": backend,
            "n_workers": args.workers,
            "engine": args.engine,
            "max_cycles": args.max_cycles,
        })
        writer.write(sim_envelope(
            result.sim, kernel=spec.name, engine=args.engine,
            config_hash=config_hash, backend=backend,
            area=result.area, power=result.power,
        ))
    print(f"run envelopes -> {args.store}/envelopes.jsonl", file=sys.stderr)


def obs_main(argv: list[str]) -> int:
    """``python -m repro.harness obs`` — query the run-record spine."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness obs",
        description="Query, diff and render the run envelopes every "
        "subcommand journals into its artifact store "
        "(<store>/envelopes.jsonl).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from ..obs.envelope import ENVELOPE_KINDS
    from ..obs.query import GROUP_KEYS, METRICS

    query = sub.add_parser(
        "query", help="load, validate, filter and aggregate envelopes",
        description="Load a journal, validate every record, and print "
        "matching envelopes (or aggregates, legacy reports, or raw JSON).",
    )
    query.add_argument(
        "journal", type=pathlib.Path, nargs="?",
        default=pathlib.Path(".cgpa-store"),
        help="envelopes.jsonl, a store root containing one, or a "
        "directory of envelope JSON files (default: ./.cgpa-store)",
    )
    query.add_argument("--kind", choices=ENVELOPE_KINDS, default=None,
                       help="keep only this run kind")
    query.add_argument("--kernel", default=None,
                       help="keep only this kernel")
    query.add_argument("--engine", default=None,
                       help="keep only this simulator engine")
    query.add_argument("--config-hash", default=None, metavar="PREFIX",
                       help="keep only runs whose config hash starts with "
                       "PREFIX")
    query.add_argument("--status", default=None,
                       help="keep only this run status")
    query.add_argument("--since", default=None, metavar="TS",
                       help="keep runs at/after this UTC timestamp (prefix "
                       "allowed, e.g. 2026-08-07)")
    query.add_argument("--until", default=None, metavar="TS",
                       help="keep runs at/before this UTC timestamp (prefix "
                       "allowed)")
    query.add_argument("--group-by", default=None, metavar="KEY[,KEY]",
                       help=f"aggregate per group; keys: {', '.join(GROUP_KEYS)}")
    query.add_argument("--metric", default="cycles", choices=METRICS,
                       help="metric to aggregate (default: cycles)")
    query.add_argument("--strict", action="store_true",
                       help="fail (exit 1) on any invalid record instead of "
                       "skipping it")
    query.add_argument("--report", action="store_true",
                       help="regenerate the legacy text report "
                       "(Pareto table / faults verdicts / stall breakdown) "
                       "from each matching envelope, byte-identical to the "
                       "original CLI output")
    query.add_argument("--json", action="store_true",
                       help="print matching envelopes as a JSON array")
    query.set_defaults(func=_obs_query)

    diff = sub.add_parser(
        "diff", help="regression diff between two journals",
        description="Compare the latest run per (kind, kernel, engine, "
        "config hash) between two journals and flag metric regressions.",
    )
    diff.add_argument("base", type=pathlib.Path,
                      help="baseline journal or store root")
    diff.add_argument("new", type=pathlib.Path,
                      help="candidate journal or store root")
    diff.add_argument("--metric", default="cycles", choices=METRICS,
                      help="metric to compare (default: cycles)")
    diff.add_argument("--threshold", type=float, default=0.0,
                      metavar="FRACTION",
                      help="relative slack before a higher value counts as "
                      "a regression (default: 0.0; 0.02 tolerates 2%%)")
    diff.add_argument("--fail-on-regression", action="store_true",
                      help="exit 1 when any identity regressed")
    diff.set_defaults(func=_obs_diff)

    report = sub.add_parser(
        "report", help="render the static HTML dashboard",
        description="Render the journal as one dependency-free HTML page "
        "(inline CSS/JS/SVG; renders from file:// and CI artifact "
        "viewers).",
    )
    report.add_argument(
        "journal", type=pathlib.Path, nargs="?",
        default=pathlib.Path(".cgpa-store"),
        help="envelopes.jsonl or a store root (default: ./.cgpa-store)",
    )
    report.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("obs-dashboard.html"),
        help="output HTML path (default: ./obs-dashboard.html)",
    )
    report.add_argument("--title", default="CGPA run dashboard",
                        help="page title")
    report.add_argument("--strict", action="store_true",
                        help="fail (exit 1) on any invalid record")
    report.set_defaults(func=_obs_report)

    args = parser.parse_args(argv)
    return args.func(args)


def _obs_query(args) -> int:
    from ..obs.query import load_envelopes, render_legacy_report

    envelopes = load_envelopes(args.journal, strict=args.strict)
    for error in envelopes.errors:
        print(f"warning: skipped invalid record: {error}", file=sys.stderr)
    subset = envelopes.filter(
        kind=args.kind, kernel=args.kernel, engine=args.engine,
        config_hash=args.config_hash, status=args.status,
        since=args.since, until=args.until,
    )
    if args.report:
        texts = [render_legacy_report(env) for env in subset]
        texts = [text for text in texts if text is not None]
        if not texts:
            print("error: no matching envelope has a legacy text report "
                  "(kinds: dse-sweep, faults, sim)", file=sys.stderr)
            return 1
        print("\n\n".join(texts))
        return 0
    if args.json:
        print(json.dumps([env.to_dict() for env in subset],
                         indent=2, sort_keys=True))
        return 0
    print(f"{len(subset)}/{len(envelopes)} envelopes from {envelopes.source}")
    if args.group_by:
        keys = [key for key in args.group_by.split(",") if key]
        for group, members in subset.group_by(*keys).items():
            stats = members.aggregate(args.metric)
            label = " ".join("-" if v is None else str(v) for v in group)
            described = (
                f"{args.metric} min={stats['min']} max={stats['max']} "
                f"latest={stats['latest']}"
                if stats["measured"] else f"no {args.metric} measured"
            )
            print(f"  {label}: {stats['runs']} run(s), {described}")
        return 0
    for env in subset:
        cycles = "-" if env.cycles is None else str(env.cycles)
        print(f"  {env.timestamp}  {env.kind:<11} "
              f"{env.kernel or '-':<14} {env.engine or '-':<11} "
              f"{env.status or '-':<9} {cycles:>9}  {env.run_id}")
    return 0


def _obs_diff(args) -> int:
    from ..obs.query import diff_envelope_sets, load_envelopes

    base = load_envelopes(args.base)
    new = load_envelopes(args.new)
    diffs = diff_envelope_sets(
        base, new, metric=args.metric, threshold=args.threshold
    )
    for entry in diffs:
        print(entry.format())
    regressed = sum(1 for entry in diffs if entry.regressed)
    improved = sum(1 for entry in diffs if not entry.regressed and entry.delta < 0)
    print(f"{len(diffs)} identities compared: {regressed} regressed, "
          f"{improved} improved, {len(diffs) - regressed - improved} unchanged")
    if args.fail_on_regression and regressed:
        return 1
    return 0


def _obs_report(args) -> int:
    from ..obs.dashboard import render_dashboard
    from ..obs.query import load_envelopes

    envelopes = load_envelopes(args.journal, strict=args.strict)
    page = render_dashboard(envelopes, title=args.title)
    if args.out.parent != pathlib.Path(""):
        args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(page)
    print(f"dashboard: {args.out} ({len(envelopes)} runs, "
          f"{len(envelopes.errors)} invalid)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, dispatch, and fold model failures into exit 1.

    Every subcommand shares this one :class:`~repro.errors.CgpaError`
    boundary (which covers :class:`~repro.errors.SimulationError` and the
    typed deadlock/budget exceptions under it): the user sees a one-line
    ``error:`` diagnosis on stderr instead of a traceback, and scripts
    get a clean non-zero exit status.
    """
    if argv is None:
        argv = sys.argv[1:]
    from ..errors import CgpaError

    try:
        return _dispatch(argv)
    except CgpaError as exc:
        print(f"error: {str(exc).splitlines()[0]}", file=sys.stderr)
        return 1


def _dispatch(argv: list[str]) -> int:
    """Route to a subcommand or run the default experiment set."""
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "dse":
        return dse_main(argv[1:])
    if argv and argv[0] == "faults":
        return faults_main(argv[1:])
    if argv and argv[0] == "rtl":
        return rtl_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "obs":
        return obs_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the CGPA paper's tables and figures.",
    )
    parser.add_argument(
        "--kernel", choices=sorted(KERNELS_BY_NAME), default=None,
        help="run a single kernel on all backends and print its metrics",
    )
    parser.add_argument(
        "--scalability", action="store_true",
        help="run the Appendix B.1 worker sweep (em3d)",
    )
    parser.add_argument(
        "--workers", type=_positive_int, default=4,
        help="parallel-stage worker count (paper default: 4)",
    )
    parser.add_argument(
        "--engine", default="event", choices=["event", "lockstep", "specialized"],
        help="simulator clock loop: event-driven skip-ahead (default) or "
        "the tick-every-cycle lockstep oracle; cycle counts are identical",
    )
    parser.add_argument(
        "--max-cycles", type=_positive_int, default=None,
        help="simulated-cycle budget per backend run; a run exceeding it "
        "fails with a one-line CycleBudgetExceeded diagnosis (default: 500M)",
    )
    _add_store_argument(parser)
    args = parser.parse_args(argv)

    if args.kernel:
        spec = KERNELS_BY_NAME[args.kernel]
        backends = ["mips", "legup", "cgpa-p1"]
        if spec.supports_p2:
            backends.append("cgpa-p2")
        run = run_kernel(spec, tuple(backends), n_workers=args.workers,
                         engine=args.engine, max_cycles=args.max_cycles)
        mips = run.results["mips"].cycles
        print(f"{spec.name} ({spec.domain}): {spec.description}")
        for backend, result in run.results.items():
            extra = f" partition={result.signature}" if result.signature else ""
            print(f"  {backend:8s}: {result.cycles:8d} cycles "
                  f"({mips / result.cycles:5.2f}x vs MIPS){extra}")
        _journal_kernel_run(args, spec, run)
        cgpa = run.results.get("cgpa-p1")
        if cgpa is not None and cgpa.sim is not None:
            print()
            print(format_stall_breakdown(cgpa.sim, kernel=spec.name))
        return 0

    if args.scalability:
        points = scalability(KERNELS_BY_NAME["em3d"], (1, 2, 4, 8))
        print(format_scalability(points))
        return 0

    print("Simulating all five kernels on all backends "
          "(this takes ~30 seconds)...\n")
    runs = run_all_kernels(n_workers=args.workers)
    print(format_table2(table2(runs)))
    print()
    print(format_figure4(figure4(runs)))
    print()
    print(format_table3(table3(runs)))
    print()
    print(format_tradeoff(tradeoff(runs)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
