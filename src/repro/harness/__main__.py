"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.harness                # everything (Table 2/3, Fig 4, tradeoff)
    python -m repro.harness --kernel em3d  # one kernel, all backends
    python -m repro.harness --scalability  # the Appendix B.1 worker sweep
    python -m repro.harness trace ks       # traced run: Chrome trace + VCD
                                           # + bottleneck analysis on disk
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from ..kernels import ALL_KERNELS, KERNELS_BY_NAME
from ..telemetry import (
    MemoryTraceSink,
    analyze,
    dump_chrome_trace,
    dump_vcd,
)
from .experiments import figure4, run_all_kernels, scalability, table2, table3, tradeoff
from .report import (
    format_bottlenecks,
    format_figure4,
    format_scalability,
    format_stall_breakdown,
    format_table2,
    format_table3,
    format_tradeoff,
)
from .runner import run_backend, run_kernel


def trace_main(argv: list[str]) -> int:
    """``python -m repro.harness trace <kernel>`` — traced simulation."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness trace",
        description="Run one kernel with cycle tracing enabled and write "
        "a chrome://tracing JSON, a VCD waveform, and a stall/bottleneck "
        "analysis.",
    )
    parser.add_argument(
        "kernel", choices=sorted(KERNELS_BY_NAME),
        help="kernel to trace",
    )
    parser.add_argument(
        "--backend", default="cgpa-p1",
        choices=["legup", "cgpa-p1", "cgpa-p2", "cgpa-none"],
        help="hardware backend to trace (default: cgpa-p1)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="parallel-stage worker count (paper default: 4)",
    )
    parser.add_argument(
        "--fifo-depth", type=int, default=16,
        help="FIFO entries per channel (paper default: 16)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("traces"),
        help="output directory (default: ./traces)",
    )
    parser.add_argument(
        "--engine", default="event", choices=["event", "lockstep"],
        help="simulator clock loop: event-driven skip-ahead (default) or "
        "the tick-every-cycle lockstep oracle; cycle counts are identical",
    )
    args = parser.parse_args(argv)

    spec = KERNELS_BY_NAME[args.kernel]
    sink = MemoryTraceSink()
    result = run_backend(
        spec, args.backend, n_workers=args.workers,
        fifo_depth=args.fifo_depth, sink=sink, engine=args.engine,
    )
    sim = result.sim
    assert sim is not None  # hardware backends always carry a SimReport

    args.out.mkdir(parents=True, exist_ok=True)
    stem = f"{spec.name}_{args.backend}"
    trace_path = args.out / f"{stem}.trace.json"
    vcd_path = args.out / f"{stem}.vcd"
    analysis_path = args.out / f"{stem}.bottleneck.txt"

    dump_chrome_trace(sink, str(trace_path))
    dump_vcd(sink, str(vcd_path))
    analysis = analyze(sim, sink)
    analysis_text = (
        format_stall_breakdown(sim, kernel=spec.name)
        + "\n\n"
        + format_bottlenecks(analysis)
    )
    analysis_path.write_text(analysis_text + "\n")

    print(f"{spec.name} on {args.backend}: {sim.cycles} cycles "
          f"({sim.invocations} invocations)")
    print(f"  chrome trace : {trace_path}  (open in chrome://tracing)")
    print(f"  vcd waveform : {vcd_path}")
    print(f"  analysis     : {analysis_path}")
    print()
    print(analysis_text)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and run the requested experiment set."""

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the CGPA paper's tables and figures.",
    )
    parser.add_argument(
        "--kernel", choices=sorted(KERNELS_BY_NAME), default=None,
        help="run a single kernel on all backends and print its metrics",
    )
    parser.add_argument(
        "--scalability", action="store_true",
        help="run the Appendix B.1 worker sweep (em3d)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="parallel-stage worker count (paper default: 4)",
    )
    parser.add_argument(
        "--engine", default="event", choices=["event", "lockstep"],
        help="simulator clock loop: event-driven skip-ahead (default) or "
        "the tick-every-cycle lockstep oracle; cycle counts are identical",
    )
    args = parser.parse_args(argv)

    if args.kernel:
        spec = KERNELS_BY_NAME[args.kernel]
        backends = ["mips", "legup", "cgpa-p1"]
        if spec.supports_p2:
            backends.append("cgpa-p2")
        run = run_kernel(spec, tuple(backends), n_workers=args.workers,
                         engine=args.engine)
        mips = run.results["mips"].cycles
        print(f"{spec.name} ({spec.domain}): {spec.description}")
        for backend, result in run.results.items():
            extra = f" partition={result.signature}" if result.signature else ""
            print(f"  {backend:8s}: {result.cycles:8d} cycles "
                  f"({mips / result.cycles:5.2f}x vs MIPS){extra}")
        cgpa = run.results.get("cgpa-p1")
        if cgpa is not None and cgpa.sim is not None:
            print()
            print(format_stall_breakdown(cgpa.sim, kernel=spec.name))
        return 0

    if args.scalability:
        points = scalability(KERNELS_BY_NAME["em3d"], (1, 2, 4, 8))
        print(format_scalability(points))
        return 0

    print("Simulating all five kernels on all backends "
          "(this takes ~30 seconds)...\n")
    runs = run_all_kernels(n_workers=args.workers)
    print(format_table2(table2(runs)))
    print()
    print(format_figure4(figure4(runs)))
    print()
    print(format_table3(table3(runs)))
    print()
    print(format_tradeoff(tradeoff(runs)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
