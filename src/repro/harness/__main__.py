"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.harness                # everything (Table 2/3, Fig 4, tradeoff)
    python -m repro.harness --kernel em3d  # one kernel, all backends
    python -m repro.harness --scalability  # the Appendix B.1 worker sweep
"""

from __future__ import annotations

import argparse
import sys

from ..kernels import ALL_KERNELS, KERNELS_BY_NAME
from .experiments import figure4, run_all_kernels, scalability, table2, table3, tradeoff
from .report import (
    format_figure4,
    format_scalability,
    format_table2,
    format_table3,
    format_tradeoff,
)
from .runner import run_kernel


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and run the requested experiment set."""

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the CGPA paper's tables and figures.",
    )
    parser.add_argument(
        "--kernel", choices=sorted(KERNELS_BY_NAME), default=None,
        help="run a single kernel on all backends and print its metrics",
    )
    parser.add_argument(
        "--scalability", action="store_true",
        help="run the Appendix B.1 worker sweep (em3d)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="parallel-stage worker count (paper default: 4)",
    )
    args = parser.parse_args(argv)

    if args.kernel:
        spec = KERNELS_BY_NAME[args.kernel]
        backends = ["mips", "legup", "cgpa-p1"]
        if spec.supports_p2:
            backends.append("cgpa-p2")
        run = run_kernel(spec, tuple(backends), n_workers=args.workers)
        mips = run.results["mips"].cycles
        print(f"{spec.name} ({spec.domain}): {spec.description}")
        for backend, result in run.results.items():
            extra = f" partition={result.signature}" if result.signature else ""
            print(f"  {backend:8s}: {result.cycles:8d} cycles "
                  f"({mips / result.cycles:5.2f}x vs MIPS){extra}")
        return 0

    if args.scalability:
        points = scalability(KERNELS_BY_NAME["em3d"], (1, 2, 4, 8))
        print(format_scalability(points))
        return 0

    print("Simulating all five kernels on all backends "
          "(this takes ~30 seconds)...\n")
    runs = run_all_kernels(n_workers=args.workers)
    print(format_table2(table2(runs)))
    print()
    print(format_figure4(figure4(runs)))
    print()
    print(format_table3(table3(runs)))
    print()
    print(format_tradeoff(tradeoff(runs)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
