"""Plain-text report formatting for the experiment drivers."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..telemetry.events import ALL_CATEGORIES
from .experiments import (
    Fig4Data,
    Table2Row,
    Table3Row,
    TradeoffRow,
    ScalabilityPoint,
    alut_overhead_geomean,
    energy_overhead_geomean,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..dse.explore import SweepResult
    from ..hw.system import SimReport
    from ..telemetry.bottleneck import BottleneckReport


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def format_table2(rows: list[Table2Row]) -> str:
    """Render the Table 2 (pipeline partitions) comparison as text."""

    body = [
        [
            r.kernel,
            r.domain,
            r.measured_p1,
            r.expected_p1,
            "yes" if r.p1_matches else "NO",
            r.measured_p2 or "-",
            r.expected_p2 or "-",
        ]
        for r in rows
    ]
    table = _table(
        ["Benchmark", "Domain", "P1 (ours)", "P1 (paper)", "match",
         "P2 (ours)", "P2 (paper)"],
        body,
    )
    return "Table 2: pipeline partitions\n" + table


def format_figure4(data: Fig4Data) -> str:
    """Render the Figure 4 (speedup) comparison as text."""

    body = []
    for r in data.rows:
        body.append([
            r.kernel,
            f"{r.legup_speedup:.2f}x",
            f"{r.paper_legup:.2f}x" if r.paper_legup else "-",
            f"{r.cgpa_speedup:.2f}x",
            f"{r.paper_cgpa:.2f}x" if r.paper_cgpa else "-",
        ])
    body.append([
        "GeoMean",
        f"{data.geomean_legup:.2f}x",
        "1.85x",
        f"{data.geomean_cgpa:.2f}x",
        "6.00x",
    ])
    table = _table(
        ["Benchmark", "Legup (ours)", "Legup (paper)", "CGPA (ours)",
         "CGPA (paper)"],
        body,
    )
    note = (
        f"\nCGPA over Legup: {data.geomean_cgpa_over_legup:.2f}x geomean "
        f"(paper: 3.3x, per-kernel 3.0x-3.8x)"
    )
    return "Figure 4: loop speedup over the MIPS soft core\n" + table + note


def format_table3(rows: list[Table3Row]) -> str:
    """Render the Table 3 (area/power/energy) comparison as text."""

    body = []
    for r in rows:
        body.append([
            r.kernel,
            r.config,
            str(r.aluts),
            str(r.paper_aluts) if r.paper_aluts else "-",
            f"{r.power_mw:.0f}",
            f"{r.paper_power_mw:.0f}" if r.paper_power_mw else "-",
            f"{r.energy_uj:.2f}",
            f"{r.paper_energy_uj:.2f}" if r.paper_energy_uj else "-",
            f"{r.efficiency:.1f}" if r.efficiency else "-",
        ])
    table = _table(
        ["Benchmark", "Type", "ALUT", "(paper)", "mW", "(paper)",
         "uJ", "(paper)", "eff"],
        body,
    )
    notes = (
        f"\nALUT overhead CGPA/Legup: {alut_overhead_geomean(rows):.1f}x geomean "
        f"(paper: ~4.1x)"
        f"\nEnergy overhead CGPA/Legup: "
        f"{100 * (energy_overhead_geomean(rows) - 1):.0f}% geomean (paper: ~20%)"
    )
    return "Table 3: area / power / energy\n" + table + notes


def format_tradeoff(rows: list[TradeoffRow]) -> str:
    """Render the P1-vs-P2 tradeoff comparison as text."""

    body = [
        [
            r.kernel,
            str(r.p1_cycles),
            str(r.p2_cycles),
            f"{r.perf_gain_pct:+.0f}%",
            f"+{r.paper_perf_gain_pct:.0f}%",
            f"{r.energy_gain_pct:+.0f}%",
            f"+{r.paper_energy_gain_pct:.0f}%",
        ]
        for r in rows
    ]
    table = _table(
        ["Benchmark", "P1 cycles", "P2 cycles", "P1 wins by", "(paper)",
         "P1 saves energy", "(paper)"],
        body,
    )
    return "Tradeoff: pipelining (P1) vs replicated data-level parallelism (P2)\n" + table


def format_scalability(points: list[ScalabilityPoint]) -> str:
    """Render the worker-scalability sweep as text."""

    body = [
        [p.kernel, str(p.n_workers), str(p.cycles), f"{p.speedup_vs_one:.2f}x"]
        for p in points
    ]
    table = _table(["Benchmark", "Workers", "Cycles", "Speedup vs 1"], body)
    return "Appendix B.1: parallel-worker scalability\n" + table


def format_stall_breakdown(sim: "SimReport", kernel: str | None = None) -> str:
    """Render one run's per-worker stall attribution as a table.

    Each row partitions that worker's ``sim.cycles`` clock edges into the
    six cycle categories (so every row's counts sum to the same total).
    """
    headers = ["Worker", "cycles"] + [c.value for c in ALL_CATEGORIES]
    body = []
    for name, counts in sim.stall_breakdown.items():
        total = sum(counts.values())
        body.append(
            [name, str(total)]
            + [
                f"{counts[c.value]} ({100 * counts[c.value] / total:.0f}%)"
                if total else "0"
                for c in ALL_CATEGORIES
            ]
        )
    title = "Per-worker stall breakdown"
    if kernel:
        title += f" ({kernel})"
    return title + "\n" + _table(headers, body)


def format_bottlenecks(analysis: "BottleneckReport") -> str:
    """Render a bottleneck analysis (critical stage + recommendations).

    Companion to :func:`format_stall_breakdown` (which renders the full
    table); this part only summarises — pair them for a complete report.
    """
    lines = []
    if analysis.critical_worker is not None:
        lines.append(
            f"Critical stage: {analysis.critical_worker} "
            f"({analysis.worker(analysis.critical_worker).stall_cycles} "
            f"stall cycles of {analysis.total_cycles} total)"
        )
    else:
        lines.append("Critical stage: none (no worker stalled)")
    if analysis.recommendations:
        lines.append("Recommendations:")
        lines.extend(f"  - {r}" for r in analysis.recommendations)
    return "\n".join(lines)


def format_pareto(sweep: "SweepResult") -> str:
    """Render a design-space sweep: header, Pareto table, dominated tally.

    ``sweep`` is a :class:`repro.dse.explore.SweepResult` (typed loosely
    to keep this module import-light; :mod:`repro.dse` imports the
    harness runner, not the other way around).
    """
    frontier = sweep.frontier()
    statuses = sweep.status_counts()
    total = sweep.cache_hits + sweep.cache_misses
    lines = [
        f"Design-space exploration: {sweep.kernel} "
        f"({sweep.strategy} strategy, {len(sweep.results)} points)",
        "  status: " + ", ".join(f"{k}={v}" for k, v in statuses.items()),
    ]
    if total:
        lines.append(
            f"  result cache: {sweep.cache_hits}/{total} hits "
            f"({100 * sweep.hit_rate:.0f}%)"
        )
    lines.append("")
    lines.append("Pareto frontier over (cycles, total_aluts, energy_uj):")
    body = [
        [
            r.point.label,
            r.signature or "?",
            str(r.cycles),
            str(r.total_aluts),
            f"{r.energy_uj:.3f}",
            f"{r.power_mw:.1f}",
            f"{100 * r.cache_hit_rate:.1f}%" if r.cache_hit_rate is not None
            else "-",
        ]
        for r in frontier
    ]
    table = _table(
        ["Config", "Pipeline", "Cycles", "ALUTs", "Energy (uJ)",
         "Power (mW)", "D$ hit"],
        body,
    )
    lines.append(table if frontier else "  (empty: no successful points)")
    dominated = statuses.get("ok", 0) - len(frontier)
    lines.append("")
    lines.append(
        f"{len(frontier)} frontier / {dominated} dominated / "
        f"{len(sweep.results) - statuses.get('ok', 0)} failed points"
    )
    return "\n".join(lines)
