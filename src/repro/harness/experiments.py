"""Experiment drivers: one function per paper table/figure.

Each driver returns structured rows (plus the paper's reported values for
side-by-side comparison) and is wrapped by a benchmark in ``benchmarks/``.
The reproduction criterion is *shape*, not absolute numbers — see
EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..kernels import ALL_KERNELS, PAPER_KERNELS, KernelSpec
from .runner import KernelRun, run_backend, run_kernel


def geomean(values) -> float:
    """Geometric mean of the positive entries of ``values``."""

    values = [v for v in values if v and v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_all_kernels(
    kernels: list[KernelSpec] | None = None,
    include_p2: bool = True,
    n_workers: int = 4,
    fifo_depth: int = 16,
) -> dict[str, KernelRun]:
    """Simulate every kernel on every applicable backend (shared by all
    table/figure drivers so the work is done once).

    Defaults to :data:`~repro.kernels.PAPER_KERNELS`: the table/figure
    drivers below compare against the paper's published numbers, which
    only exist for the original five.  Pass ``kernels=ALL_KERNELS`` (or
    any subset) to widen a run — the drivers iterate whatever ``runs``
    holds."""
    kernels = kernels if kernels is not None else PAPER_KERNELS
    runs: dict[str, KernelRun] = {}
    for spec in kernels:
        backends = ["mips", "legup", "cgpa-p1"]
        if include_p2 and spec.supports_p2:
            backends.append("cgpa-p2")
        runs[spec.name] = run_kernel(
            spec, tuple(backends), n_workers=n_workers, fifo_depth=fifo_depth
        )
    return runs


# ---------------------------------------------------------------------------
# Table 2: pipeline partitions
# ---------------------------------------------------------------------------


@dataclass
class Table2Row:
    """One kernel's measured vs. paper pipeline shapes."""

    kernel: str
    domain: str
    description: str
    measured_p1: str
    expected_p1: str
    measured_p2: str | None
    expected_p2: str | None

    @property
    def p1_matches(self) -> bool:
        return self.measured_p1 == self.expected_p1

    @property
    def p2_matches(self) -> bool:
        if self.expected_p2 is None:
            return self.measured_p2 is None
        return self.measured_p2 == self.expected_p2


def table2(runs: dict[str, KernelRun]) -> list[Table2Row]:
    """Regenerate Table 2 rows from precomputed kernel runs."""

    rows = []
    for spec in (k for k in ALL_KERNELS if k.name in runs):
        run = runs[spec.name]
        p2 = run.results.get("cgpa-p2")
        rows.append(
            Table2Row(
                kernel=spec.name,
                domain=spec.domain,
                description=spec.description,
                measured_p1=run.results["cgpa-p1"].signature or "?",
                expected_p1=spec.expected_p1,
                measured_p2=p2.signature if p2 else None,
                expected_p2=spec.expected_p2,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 4: loop speedups over the MIPS soft core
# ---------------------------------------------------------------------------


@dataclass
class Fig4Row:
    """One kernel's speedups over the MIPS core (ours vs. paper)."""

    kernel: str
    legup_speedup: float
    cgpa_speedup: float
    paper_legup: float | None
    paper_cgpa: float | None


@dataclass
class Fig4Data:
    """All Figure 4 rows plus geomean accessors."""

    rows: list[Fig4Row]

    @property
    def geomean_legup(self) -> float:
        return geomean([r.legup_speedup for r in self.rows])

    @property
    def geomean_cgpa(self) -> float:
        return geomean([r.cgpa_speedup for r in self.rows])

    @property
    def geomean_cgpa_over_legup(self) -> float:
        return geomean([r.cgpa_speedup / r.legup_speedup for r in self.rows])


def figure4(runs: dict[str, KernelRun]) -> Fig4Data:
    """Regenerate Figure 4 data from precomputed kernel runs."""

    rows = []
    for spec in (k for k in ALL_KERNELS if k.name in runs):
        run = runs[spec.name]
        rows.append(
            Fig4Row(
                kernel=spec.name,
                legup_speedup=run.speedup("legup"),
                cgpa_speedup=run.speedup("cgpa-p1"),
                paper_legup=spec.paper.speedup_legup if spec.paper else None,
                paper_cgpa=spec.paper.speedup_cgpa if spec.paper else None,
            )
        )
    return Fig4Data(rows)


# ---------------------------------------------------------------------------
# Table 3: area, power, energy, energy efficiency
# ---------------------------------------------------------------------------


@dataclass
class Table3Row:
    """One (kernel, config) row of Table 3 with paper values."""

    kernel: str
    config: str  # 'Legup' | 'CGPA (P1)' | 'CGPA (P2)'
    aluts: int
    power_mw: float
    energy_uj: float
    efficiency: float | None
    paper_aluts: int | None = None
    paper_power_mw: float | None = None
    paper_energy_uj: float | None = None


def table3(runs: dict[str, KernelRun]) -> list[Table3Row]:
    """Regenerate Table 3 rows from precomputed kernel runs."""

    rows: list[Table3Row] = []
    for spec in (k for k in ALL_KERNELS if k.name in runs):
        run = runs[spec.name]
        paper = spec.paper
        configs = [("legup", "Legup"), ("cgpa-p1", "CGPA (P1)")]
        if "cgpa-p2" in run.results:
            configs.append(("cgpa-p2", "CGPA (P2)"))
        for backend, label in configs:
            result = run.results[backend]
            paper_vals = (None, None, None)
            if paper:
                if backend == "legup":
                    paper_vals = (
                        paper.legup_aluts, paper.legup_power_mw, paper.legup_energy_uj,
                    )
                elif backend == "cgpa-p1":
                    paper_vals = (
                        paper.cgpa_aluts, paper.cgpa_power_mw, paper.cgpa_energy_uj,
                    )
                elif backend == "cgpa-p2":
                    paper_vals = (
                        paper.cgpa_p2_aluts, None, paper.cgpa_p2_energy_uj,
                    )
            rows.append(
                Table3Row(
                    kernel=spec.name,
                    config=label,
                    aluts=result.aluts or 0,
                    power_mw=result.power_mw or 0.0,
                    energy_uj=result.energy_uj or 0.0,
                    efficiency=run.energy_efficiency(backend),
                    paper_aluts=paper_vals[0],
                    paper_power_mw=paper_vals[1],
                    paper_energy_uj=paper_vals[2],
                )
            )
    return rows


def alut_overhead_geomean(rows: list[Table3Row]) -> float:
    """CGPA-P1 over LegUp ALUT ratio (paper: ~4.1x)."""
    by_kernel: dict[str, dict[str, Table3Row]] = {}
    for row in rows:
        by_kernel.setdefault(row.kernel, {})[row.config] = row
    ratios = [
        k["CGPA (P1)"].aluts / k["Legup"].aluts
        for k in by_kernel.values()
        if "CGPA (P1)" in k and k["Legup"].aluts
    ]
    return geomean(ratios)


def energy_overhead_geomean(rows: list[Table3Row]) -> float:
    """CGPA-P1 over LegUp energy ratio (paper: ~1.20x, i.e. 20%)."""
    by_kernel: dict[str, dict[str, Table3Row]] = {}
    for row in rows:
        by_kernel.setdefault(row.kernel, {})[row.config] = row
    ratios = [
        k["CGPA (P1)"].energy_uj / k["Legup"].energy_uj
        for k in by_kernel.values()
        if "CGPA (P1)" in k and k["Legup"].energy_uj
    ]
    return geomean(ratios)


# ---------------------------------------------------------------------------
# Section 4.2 "Tradeoff": P1 vs P2 for em3d and 1D-Gaussblur
# ---------------------------------------------------------------------------


@dataclass
class TradeoffRow:
    """P1-vs-P2 cycles and energy for one kernel."""

    kernel: str
    p1_cycles: int
    p2_cycles: int
    p1_energy_uj: float
    p2_energy_uj: float
    #: The paper reports P1 outperforming P2 by 6% (em3d) / 15% (blur) and
    #: using 11% / 14% less energy.
    paper_perf_gain_pct: float
    paper_energy_gain_pct: float

    @property
    def perf_gain_pct(self) -> float:
        return 100.0 * (self.p2_cycles / self.p1_cycles - 1.0)

    @property
    def energy_gain_pct(self) -> float:
        return 100.0 * (1.0 - self.p1_energy_uj / self.p2_energy_uj)


def tradeoff(runs: dict[str, KernelRun]) -> list[TradeoffRow]:
    """Regenerate the Section 4.2 P1/P2 tradeoff comparison."""

    paper_numbers = {"em3d": (6.0, 11.0), "1D-Gaussblur": (15.0, 14.0)}
    rows = []
    for name, (perf, energy) in paper_numbers.items():
        run = runs[name]
        if "cgpa-p2" not in run.results:
            continue
        p1 = run.results["cgpa-p1"]
        p2 = run.results["cgpa-p2"]
        rows.append(
            TradeoffRow(
                kernel=name,
                p1_cycles=p1.cycles,
                p2_cycles=p2.cycles,
                p1_energy_uj=p1.energy_uj or 0.0,
                p2_energy_uj=p2.energy_uj or 0.0,
                paper_perf_gain_pct=perf,
                paper_energy_gain_pct=energy,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Appendix B.1: scalability with parallel-worker count
# ---------------------------------------------------------------------------


@dataclass
class ScalabilityPoint:
    """Cycles for one (kernel, worker count) configuration."""

    kernel: str
    n_workers: int
    cycles: int
    speedup_vs_one: float = 0.0


def scalability(
    spec: KernelSpec,
    worker_counts: tuple[int, ...] = (1, 2, 4, 8),
) -> list[ScalabilityPoint]:
    """Sweep the parallel-worker count for one kernel (App. B.1)."""

    points = []
    for n in worker_counts:
        result = run_backend(spec, "cgpa-p1", n_workers=n)
        points.append(ScalabilityPoint(spec.name, n, result.cycles))
    base = points[0].cycles
    for p in points:
        p.speedup_vs_one = base / p.cycles
    return points


# ---------------------------------------------------------------------------
# Ablations: FIFO depth, miss latency, replication policy
# ---------------------------------------------------------------------------


@dataclass
class AblationPoint:
    """One (kernel, knob, value) -> cycles measurement."""

    kernel: str
    knob: str
    value: object
    cycles: int


def fifo_depth_ablation(
    spec: KernelSpec, depths: tuple[int, ...] = (1, 2, 4, 16, 64)
) -> list[AblationPoint]:
    """Variable-latency tolerance (Section 2.2): deeper FIFOs decouple the
    stages; depth 1 effectively lock-steps them."""
    return [
        AblationPoint(
            spec.name, "fifo_depth", d,
            run_backend(spec, "cgpa-p1", fifo_depth=d).cycles,
        )
        for d in depths
    ]


def miss_latency_ablation(
    spec: KernelSpec, penalties: tuple[int, ...] = (8, 24, 64)
) -> list[AblationPoint]:
    """How each backend tolerates slower memory (the pipelining benefit)."""
    points = []
    for penalty in penalties:
        for backend in ("legup", "cgpa-p1"):
            result = run_backend(
                spec, backend, cache_kwargs={"miss_penalty": penalty}
            )
            points.append(
                AblationPoint(spec.name, f"{backend}:miss_penalty", penalty, result.cycles)
            )
    return points


def replication_policy_ablation(spec: KernelSpec) -> list[AblationPoint]:
    """P1 vs P2 vs never-replicate (NONE) on one kernel."""
    points = []
    for backend in ("cgpa-p1", "cgpa-none") + (
        ("cgpa-p2",) if spec.supports_p2 else ()
    ):
        result = run_backend(spec, backend)
        points.append(
            AblationPoint(spec.name, "policy", backend.split("-")[1], result.cycles)
        )
    return points


def prefetch_ablation(
    specs: list[KernelSpec] | None = None,
) -> list[AblationPoint]:
    """Next-line prefetching (Appendix B.2 future work).

    Streaming kernels (1D-Gaussblur's image rows) should benefit; the
    pointer-chasing em3d traversal should be essentially unaffected —
    exactly the asymmetry that makes the paper call prefetching a
    *complementary* technique.
    """
    from ..kernels import EM3D, GAUSSBLUR

    specs = specs if specs is not None else [GAUSSBLUR, EM3D]
    points = []
    for spec in specs:
        for prefetch in (False, True):
            result = run_backend(
                spec, "cgpa-p1",
                cache_kwargs={"next_line_prefetch": prefetch},
            )
            label = "on" if prefetch else "off"
            points.append(
                AblationPoint(spec.name, f"prefetch:{label}", prefetch, result.cycles)
            )
    return points


def memory_system_ablation(
    spec: KernelSpec, worker_counts: tuple[int, ...] = (4, 8)
) -> list[AblationPoint]:
    """Shared 8-port cache vs per-worker private slices (Appendix B.1).

    The paper argues the shared-memory overhead grows with the worker
    count and that "private cache and memory partition techniques" fix
    it; this ablation measures both organisations at increasing worker
    counts.  Implemented outside the standard backend runner because the
    private-cache mode is a system-level switch.
    """
    from ..frontend import compile_c
    from ..hw import AcceleratorSystem, DirectMappedCache
    from ..pipeline import ReplicationPolicy, cgpa_compile
    from ..transforms import optimize_module
    from .runner import setup_workload

    points = []
    for n_workers in worker_counts:
        for private in (False, True):
            module = compile_c(spec.source, spec.name)
            optimize_module(module)
            compiled = cgpa_compile(
                module, spec.accel_function, shapes=spec.shapes_for(module),
                policy=ReplicationPolicy.P1, n_workers=n_workers,
            )
            memory, globals_, args = setup_workload(compiled.module, spec)
            system = AcceleratorSystem(
                compiled.module, memory,
                channels=compiled.result.channels,
                cache=DirectMappedCache(ports=8),
                global_addresses=globals_,
                private_caches=private,
            )
            sim = system.run(spec.measure_entry, args)
            label = "private" if private else "shared"
            points.append(
                AblationPoint(
                    spec.name, f"mem:{label}", n_workers, sim.cycles
                )
            )
    return points
