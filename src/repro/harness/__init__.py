"""Experiment harness: backend runners, experiments, report formatting."""

from .experiments import (
    Fig4Data,
    Table2Row,
    Table3Row,
    TradeoffRow,
    alut_overhead_geomean,
    energy_overhead_geomean,
    figure4,
    fifo_depth_ablation,
    geomean,
    memory_system_ablation,
    miss_latency_ablation,
    prefetch_ablation,
    replication_policy_ablation,
    run_all_kernels,
    scalability,
    table2,
    table3,
    tradeoff,
)
from .report import (
    format_bottlenecks,
    format_figure4,
    format_pareto,
    format_scalability,
    format_stall_breakdown,
    format_table2,
    format_table3,
    format_tradeoff,
)
from .sections import annotate_sections, format_sections, section_summary
from .runner import (
    DEFAULT_BACKENDS,
    BackendResult,
    KernelRun,
    run_backend,
    run_kernel,
)

__all__ = [
    "run_kernel", "run_backend", "KernelRun", "BackendResult",
    "DEFAULT_BACKENDS",
    "run_all_kernels", "figure4", "table2", "table3", "tradeoff",
    "scalability", "fifo_depth_ablation", "miss_latency_ablation",
    "replication_policy_ablation", "memory_system_ablation",
    "prefetch_ablation", "geomean",
    "Fig4Data", "Table2Row", "Table3Row", "TradeoffRow",
    "alut_overhead_geomean", "energy_overhead_geomean",
    "format_figure4", "format_table2", "format_table3", "format_tradeoff",
    "format_scalability", "format_stall_breakdown", "format_bottlenecks",
    "format_pareto",
]
