"""Byte-addressable memory image for interpretation and simulation.

One :class:`Memory` instance is shared by the software interpreter, the
MIPS baseline cost model and the hardware accelerator simulator, so the
"accelerator output equals software output" verification compares like
with like.

Addresses are 32-bit (the paper's target).  A bump allocator serves
``malloc``; every allocation records its *site id* (the IR call site), the
runtime counterpart of the allocation-site abstraction the points-to
analysis uses.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import InterpError
from ..ir.types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
)

#: Allocations start here so that address 0 stays an unmapped null page.
HEAP_BASE = 0x1000
#: Top of the 32-bit address space we allow.
ADDRESS_LIMIT = 1 << 31


@dataclass
class Allocation:
    """One heap allocation: [addr, addr+size), tagged with its site."""

    addr: int
    size: int
    site: int

    @property
    def end(self) -> int:
        return self.addr + self.size


class Memory:
    """Flat little-endian memory with typed accessors and bounds checks."""

    def __init__(self, size: int = 1 << 24) -> None:
        self._data = bytearray(size)
        self._brk = HEAP_BASE
        self.allocations: list[Allocation] = []
        #: Total bytes read/written, used by the energy model.
        self.bytes_read = 0
        self.bytes_written = 0

    # -- allocation ----------------------------------------------------------

    def malloc(self, size: int, site: int = -1, align: int = 8) -> int:
        """Bump-allocate ``size`` bytes; returns the address."""
        if size < 0:
            raise InterpError(f"malloc of negative size {size}")
        addr = (self._brk + align - 1) // align * align
        if addr + size > len(self._data):
            self._grow(addr + size)
        self._brk = addr + max(size, 1)
        self.allocations.append(Allocation(addr, size, site))
        return addr

    def alloc_object(self, type_: Type, site: int = -1) -> int:
        """Allocate one object of an IR type."""
        return self.malloc(type_.size(), site, align=max(type_.alignment(), 4))

    def _grow(self, needed: int) -> None:
        if needed > ADDRESS_LIMIT:
            raise InterpError("out of simulated memory")
        new_size = len(self._data)
        while new_size < needed:
            new_size *= 2
        self._data.extend(bytes(new_size - len(self._data)))

    def allocation_containing(self, addr: int) -> Allocation | None:
        for alloc in self.allocations:
            if alloc.addr <= addr < alloc.end:
                return alloc
        return None

    # -- raw access ----------------------------------------------------------

    def _check(self, addr: int, size: int) -> None:
        if addr <= 0:
            raise InterpError(f"access to null/negative address {addr:#x}")
        if addr + size > len(self._data):
            self._grow(addr + size)

    def read_bytes(self, addr: int, size: int) -> bytes:
        self._check(addr, size)
        self.bytes_read += size
        return bytes(self._data[addr : addr + size])

    def write_bytes(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data))
        self.bytes_written += len(data)
        self._data[addr : addr + len(data)] = data

    # -- typed access ----------------------------------------------------------

    def load(self, addr: int, type_: Type) -> int | float:
        if isinstance(type_, IntType):
            size = type_.size()
            raw = int.from_bytes(self.read_bytes(addr, size), "little", signed=False)
            return _to_signed(raw, type_.bits) if type_.bits > 1 else raw & 1
        if isinstance(type_, FloatType):
            fmt = "<f" if type_.bits == 32 else "<d"
            return struct.unpack(fmt, self.read_bytes(addr, type_.size()))[0]
        if isinstance(type_, PointerType):
            return int.from_bytes(self.read_bytes(addr, 4), "little")
        raise InterpError(f"cannot load value of type {type_!r}")

    def store(self, addr: int, type_: Type, value: int | float) -> None:
        if isinstance(type_, IntType):
            size = type_.size()
            bits = max(type_.bits, 8)
            raw = int(value) & ((1 << bits) - 1)
            self.write_bytes(addr, raw.to_bytes(size, "little"))
            return
        if isinstance(type_, FloatType):
            fmt = "<f" if type_.bits == 32 else "<d"
            self.write_bytes(addr, struct.pack(fmt, float(value)))
            return
        if isinstance(type_, PointerType):
            self.write_bytes(addr, (int(value) & 0xFFFFFFFF).to_bytes(4, "little"))
            return
        raise InterpError(f"cannot store value of type {type_!r}")

    # -- structured helpers (used by workload builders and tests) -----------------

    def field_addr(self, base: int, struct_type: StructType, field: str) -> int:
        return base + struct_type.field_offset(struct_type.field_index(field))

    def load_field(self, base: int, struct_type: StructType, field: str):
        index = struct_type.field_index(field)
        return self.load(
            base + struct_type.field_offset(index), struct_type.field_type(index)
        )

    def store_field(self, base: int, struct_type: StructType, field: str, value) -> None:
        index = struct_type.field_index(field)
        self.store(
            base + struct_type.field_offset(index),
            struct_type.field_type(index),
            value,
        )

    def elem_addr(self, base: int, elem_type: Type, index: int) -> int:
        return base + elem_type.size() * index

    def load_array(self, base: int, elem_type: Type, count: int) -> list:
        return [
            self.load(self.elem_addr(base, elem_type, i), elem_type)
            for i in range(count)
        ]

    def store_array(self, base: int, elem_type: Type, values) -> None:
        for i, v in enumerate(values):
            self.store(self.elem_addr(base, elem_type, i), elem_type, v)

    def snapshot(self) -> bytes:
        """Copy of the used portion of memory, for output comparison."""
        return bytes(self._data[: self._brk])

    def clone(self) -> "Memory":
        """Deep copy sharing nothing, for running two backends on one image.

        Also carries the access counters, so a clone of an interned
        post-setup image (:mod:`repro.fleet`) is bit-identical to a
        freshly set-up one.
        """
        copy = Memory(len(self._data))
        copy._data[:] = self._data
        copy._brk = self._brk
        copy.allocations = [Allocation(a.addr, a.size, a.site) for a in self.allocations]
        copy.bytes_read = self.bytes_read
        copy.bytes_written = self.bytes_written
        return copy


def _to_signed(raw: int, bits: int) -> int:
    if raw >= 1 << (bits - 1):
        return raw - (1 << bits)
    return raw


def wrap_int(value: int, bits: int) -> int:
    """Wrap a Python int to a signed ``bits``-wide machine integer."""
    if bits == 1:
        return value & 1
    mask = (1 << bits) - 1
    return _to_signed(value & mask, bits)


def to_unsigned(value: int, bits: int) -> int:
    """Reinterpret a signed machine integer as unsigned."""

    return value & ((1 << bits) - 1)


def round_f32(value: float) -> float:
    """Round a Python float to IEEE single precision.

    Values beyond the f32 range overflow to infinity, exactly as the
    hardware's single-precision units would.
    """
    try:
        return struct.unpack("<f", struct.pack("<f", value))[0]
    except OverflowError:
        return float("inf") if value > 0 else float("-inf")
