"""Execution profiling (the paper's "simple profiling step").

The profile drives two things: hotspot identification (which loop to
accelerate) and the pipeline partitioner's SCC weights (how many dynamic
instructions each SCC accounts for).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction
from ..ir.module import Module
from .interpreter import Interpreter
from .memory import Memory


@dataclass
class Profile:
    """Dynamic execution counts collected by one profiled run."""

    inst_counts: Counter = field(default_factory=Counter)  # id(inst) -> count
    block_counts: Counter = field(default_factory=Counter)  # id(block) -> count
    edge_counts: Counter = field(default_factory=Counter)  # (id(b1), id(b2)) -> count
    return_value: int | float | None = None

    def count(self, inst: Instruction) -> int:
        return self.inst_counts.get(id(inst), 0)

    def block_count(self, block: BasicBlock) -> int:
        return self.block_counts.get(id(block), 0)

    def edge_count(self, src: BasicBlock, dst: BasicBlock) -> int:
        return self.edge_counts.get((id(src), id(dst)), 0)

    def total_instructions(self) -> int:
        return sum(self.inst_counts.values())

    def function_weight(self, function: Function) -> int:
        """Dynamic instructions executed inside ``function``'s own blocks."""
        return sum(self.count(inst) for inst in function.instructions())

    def hottest_blocks(self, function: Function, top: int = 5) -> list[BasicBlock]:
        blocks = sorted(
            function.blocks, key=lambda b: self.block_count(b), reverse=True
        )
        return blocks[:top]


def profile_call(
    module: Module,
    function_name: str,
    args: list[int | float],
    memory: Memory | None = None,
    max_steps: int = 200_000_000,
) -> Profile:
    """Run ``function_name`` under the interpreter, collecting a profile."""
    profile = Profile()

    def on_execute(inst: Instruction) -> None:
        profile.inst_counts[id(inst)] += 1

    def on_edge(src: BasicBlock, dst: BasicBlock) -> None:
        profile.edge_counts[(id(src), id(dst))] += 1
        profile.block_counts[id(dst)] += 1

    interp = Interpreter(
        module,
        memory,
        max_steps=max_steps,
        on_execute=on_execute,
        on_edge=on_edge,
    )
    # Entry blocks are not reached via an edge; count the initial one.
    entry = module.get_function(function_name).entry
    profile.block_counts[id(entry)] += 1
    profile.return_value = interp.call(function_name, args)
    return profile
