"""Pure operation semantics shared by the interpreter and the HW worker.

Keeping one implementation of arithmetic/GEP/cast semantics guarantees the
functional interpreter and the cycle-accurate FSM simulator can never
disagree on values — only on timing.
"""

from __future__ import annotations

from ..errors import InterpError
from ..ir.instructions import (
    FCMP_FUNCS,
    FLOAT_BINOP_FUNCS,
    ICMP_FUNCS,
    INT_BINOP_FUNCS,
    GEP,
    BinaryOp,
    Cast,
    FCmp,
    ICmp,
)
from ..ir.types import ArrayType, FloatType, StructType
from .memory import round_f32, to_unsigned, wrap_int


def eval_binop(inst: BinaryOp, a, b):
    """Evaluate a binary operation with machine semantics."""

    op = inst.opcode
    if op in FLOAT_BINOP_FUNCS:
        try:
            result = FLOAT_BINOP_FUNCS[op](a, b)
        except ZeroDivisionError:
            raise InterpError("float division by zero") from None
        if isinstance(inst.type, FloatType) and inst.type.bits == 32:
            result = round_f32(result)
        return result
    bits = inst.type.bits  # type: ignore[union-attr]
    if op in ("udiv", "urem", "lshr", "ult"):
        a = to_unsigned(int(a), bits)
        b = to_unsigned(int(b), bits)
    try:
        raw = INT_BINOP_FUNCS[op](int(a), int(b))
    except ZeroDivisionError:
        raise InterpError("integer division by zero") from None
    return wrap_int(raw, bits)


def eval_icmp(inst: ICmp, a, b) -> int:
    """Evaluate an integer/pointer comparison to 0 or 1."""

    if inst.pred.startswith("u") or inst.lhs.type.is_pointer:
        bits = 32 if inst.lhs.type.is_pointer else inst.lhs.type.bits
        a = to_unsigned(int(a), bits)
        b = to_unsigned(int(b), bits)
    return int(ICMP_FUNCS[inst.pred](a, b))


def eval_fcmp(inst: FCmp, a, b) -> int:
    """Evaluate a floating-point comparison to 0 or 1."""

    return int(FCMP_FUNCS[inst.pred](a, b))


def eval_gep(inst: GEP, base_addr: int, index_values: list) -> int:
    """Compute a GEP address given the base and evaluated indices."""
    pointee = inst.base.type.pointee  # type: ignore[union-attr]
    addr = int(base_addr) + pointee.size() * int(index_values[0])
    current = pointee
    for idx_value, idx in zip(index_values[1:], inst.indices[1:]):
        if isinstance(current, StructType):
            field = int(idx_value)
            addr += current.field_offset(field)
            current = current.field_type(field)
        elif isinstance(current, ArrayType):
            addr += current.element.size() * int(idx_value)
            current = current.element
        else:
            raise InterpError(f"gep through non-aggregate {current!r}")
    return addr & 0xFFFFFFFF


def eval_cast(inst: Cast, value):
    """Evaluate a type conversion with machine semantics."""

    op = inst.opcode
    if op == "trunc":
        return wrap_int(int(value), inst.type.bits)  # type: ignore[union-attr]
    if op == "zext":
        return to_unsigned(int(value), inst.value.type.bits)  # type: ignore[union-attr]
    if op == "sext":
        return int(value)
    if op == "fptosi":
        return wrap_int(int(value), inst.type.bits)  # type: ignore[union-attr]
    if op == "sitofp":
        result = float(value)
        if isinstance(inst.type, FloatType) and inst.type.bits == 32:
            result = round_f32(result)
        return result
    if op == "fpext":
        return float(value)
    if op == "fptrunc":
        return round_f32(float(value))
    if op in ("bitcast", "ptrtoint", "inttoptr"):
        if inst.type.is_pointer or op == "ptrtoint":
            return int(value) & 0xFFFFFFFF
        return value
    raise InterpError(f"cannot evaluate cast {op}")
