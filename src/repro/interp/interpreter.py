"""Explicit-stack IR interpreter.

The interpreter executes one instruction per :meth:`Interpreter.step`, with
an explicit call stack rather than Python recursion.  That design lets the
functional pipeline checker (:mod:`repro.pipeline.cosim`) run many task
interpreters round-robin, blocking individual machines on empty FIFO
channels, and lets the MIPS baseline model charge per-instruction cycle
costs through a profiler hook.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable

from ..errors import InterpError
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    FCMP_FUNCS,
    FLOAT_BINOP_FUNCS,
    ICMP_FUNCS,
    INT_BINOP_FUNCS,
    GEP,
    Alloca,
    BinaryOp,
    Call,
    Cast,
    CondBranch,
    Consume,
    FCmp,
    ICmp,
    Instruction,
    Jump,
    Load,
    ParallelFork,
    ParallelJoin,
    Phi,
    Produce,
    ProduceBroadcast,
    Ret,
    RetrieveLiveout,
    Select,
    Store,
    StoreLiveout,
)
from ..ir.module import Module
from ..ir.types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
)
from ..ir.values import Argument, Constant, GlobalVariable, Value
from .memory import Memory, round_f32, to_unsigned, wrap_int

#: Names treated as heap-allocation builtins when declared without a body.
MALLOC_NAMES = {"malloc"}


class Status(enum.Enum):
    """Result of one interpreter step."""

    RUNNING = "running"
    BLOCKED = "blocked"  # waiting on an empty FIFO channel
    DONE = "done"


class Blocked(Exception):
    """Internal signal: the current instruction cannot make progress."""


class ChannelIO:
    """Unbounded in-order channels for *functional* pipeline execution.

    The hardware simulator has its own bounded FIFOs with cycle costs; this
    class exists so the pipeline transform can be validated for correctness
    independent of timing.
    """

    def __init__(self) -> None:
        # Deques, not lists: a deep queue (e.g. an unthrottled producer
        # ahead of a slow consumer) made ``pop(0)`` O(n) per token and
        # the whole functional run O(n^2).
        self._queues: dict[tuple[int, int], deque] = {}
        self.liveouts: dict[int, int | float] = {}

    def _queue(self, channel_id: int, index: int) -> deque:
        return self._queues.setdefault((channel_id, index), deque())

    def produce(self, channel, index: int, value) -> None:
        self._queue(channel.channel_id, index).append(value)

    def produce_broadcast(self, channel, value) -> None:
        for i in range(channel.n_channels):
            self._queue(channel.channel_id, i).append(value)

    def try_consume(self, channel, index: int):
        """Returns (True, value) or (False, None) when empty."""
        queue = self._queue(channel.channel_id, index)
        if not queue:
            return False, None
        return True, queue.popleft()

    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def queue_sizes(self) -> dict[tuple[int, int], int]:
        """Tokens currently pending per ``(channel_id, index)`` queue."""
        return {key: len(q) for key, q in self._queues.items() if q}

    def queue_snapshot(self) -> dict[tuple[int, int], tuple]:
        """Pending token values per non-empty ``(channel_id, index)`` queue."""
        return {key: tuple(q) for key, q in self._queues.items() if q}


#: Index recorded for a broadcast push (one log entry covers all queues).
BROADCAST_INDEX = -1


class _LoggingLiveouts(dict):
    """Live-out store that records every write with its attribution tag."""

    def __init__(self, owner: "RecordingChannelIO") -> None:
        super().__init__()
        self._owner = owner

    def __setitem__(self, key: int, value) -> None:
        self._owner.liveout_log.append((self._owner.current_tag, key, value))
        super().__setitem__(key, value)


class RecordingChannelIO(ChannelIO):
    """A :class:`ChannelIO` that logs channel traffic and live-out writes.

    The RTL co-simulator (:mod:`repro.vsim.cosim`) replays an oracle run
    and needs, per worker instance, the exact in-order sequence of tokens
    produced/consumed and live-outs written.  ``current_tag`` identifies
    the machine currently executing (the caller sets it around each
    ``step()`` batch); every log entry carries that tag.

    Logs:

    * ``push_log`` — ``(tag, channel_id, index, value)``; a broadcast is
      one entry with ``index == BROADCAST_INDEX``.
    * ``pop_log`` — ``(tag, channel_id, index, value)``.
    * ``liveout_log`` — ``(tag, liveout_id, value)``.

    Indices are post-modulo, exactly what the channels were keyed by.
    """

    def __init__(self) -> None:
        super().__init__()
        self.current_tag: str = "parent"
        self.push_log: list[tuple[str, int, int, int | float]] = []
        self.pop_log: list[tuple[str, int, int, int | float]] = []
        self.liveout_log: list[tuple[str, int, int | float]] = []
        self.liveouts = _LoggingLiveouts(self)

    def produce(self, channel, index: int, value) -> None:
        super().produce(channel, index, value)
        self.push_log.append(
            (self.current_tag, channel.channel_id, index, value)
        )

    def produce_broadcast(self, channel, value) -> None:
        super().produce_broadcast(channel, value)
        self.push_log.append(
            (self.current_tag, channel.channel_id, BROADCAST_INDEX, value)
        )

    def try_consume(self, channel, index: int):
        ok, value = super().try_consume(channel, index)
        if ok:
            self.pop_log.append(
                (self.current_tag, channel.channel_id, index, value)
            )
        return ok, value


class _Frame:
    """One activation record."""

    __slots__ = ("function", "block", "index", "prev_block", "env", "call_inst")

    def __init__(self, function: Function, call_inst: Instruction | None) -> None:
        self.function = function
        self.block: BasicBlock = function.entry
        self.index = 0
        self.prev_block: BasicBlock | None = None
        self.env: dict[int, int | float] = {}
        self.call_inst = call_inst  # instruction in the caller awaiting our result


class Interpreter:
    """Executes IR functions against a shared :class:`Memory` image."""

    def __init__(
        self,
        module: Module,
        memory: Memory | None = None,
        channel_io: ChannelIO | None = None,
        worker_id: int = 0,
        max_steps: int = 200_000_000,
        on_execute: Callable[[Instruction], None] | None = None,
        on_edge: Callable[[BasicBlock, BasicBlock], None] | None = None,
        global_addresses: dict[str, int] | None = None,
        fork_handler=None,
    ) -> None:
        self.module = module
        self.memory = memory if memory is not None else Memory()
        self.channel_io = channel_io
        self.worker_id = worker_id
        self.max_steps = max_steps
        self.steps = 0
        self.on_execute = on_execute
        self.on_edge = on_edge
        self.fork_handler = fork_handler
        self._stack: list[_Frame] = []
        self._return_value: int | float | None = None
        self._alloc_sites = _number_malloc_sites(module)
        if global_addresses is not None:
            self.global_addresses = dict(global_addresses)
        else:
            self.global_addresses = _place_globals(module, self.memory)

    # -- public driving --------------------------------------------------------

    def call(self, function: Function | str, args: list[int | float]):
        """Run ``function`` to completion and return its return value."""
        self.start(function, args)
        while True:
            status = self.step()
            if status is Status.DONE:
                return self._return_value
            if status is Status.BLOCKED:
                raise InterpError(
                    "interpreter blocked on an empty channel outside a "
                    "cooperative scheduler"
                )

    def start(self, function: Function | str, args: list[int | float]) -> None:
        """Prepare a top-level call without running it (for step drivers)."""
        if isinstance(function, str):
            function = self.module.get_function(function)
        if self._stack:
            raise InterpError("interpreter is already running a call")
        frame = _Frame(function, None)
        if len(args) != len(function.args):
            raise InterpError(
                f"@{function.name}: expected {len(function.args)} args, "
                f"got {len(args)}"
            )
        for formal, actual in zip(function.args, args):
            frame.env[id(formal)] = actual
        self._stack.append(frame)
        self._return_value = None

    @property
    def done(self) -> bool:
        return not self._stack

    @property
    def return_value(self):
        return self._return_value

    def step(self) -> Status:
        """Execute one instruction (or block without advancing)."""
        if not self._stack:
            return Status.DONE
        self.steps += 1
        if self.steps > self.max_steps:
            raise InterpError(f"exceeded max_steps={self.max_steps}")
        frame = self._stack[-1]
        inst = frame.block.instructions[frame.index]
        try:
            self._execute(frame, inst)
        except Blocked:
            return Status.BLOCKED
        if self.on_execute is not None:
            self.on_execute(inst)
        return Status.DONE if not self._stack else Status.RUNNING

    # -- evaluation -------------------------------------------------------------

    def _value(self, frame: _Frame, v: Value):
        if isinstance(v, Constant):
            return v.value
        if isinstance(v, GlobalVariable):
            return self.global_addresses[v.name]
        try:
            return frame.env[id(v)]
        except KeyError:
            raise InterpError(
                f"use of undefined value {v.short_name()} in "
                f"@{frame.function.name}"
            ) from None

    def _set(self, frame: _Frame, inst: Instruction, value) -> None:
        frame.env[id(inst)] = value
        frame.index += 1

    def _advance(self, frame: _Frame) -> None:
        frame.index += 1

    def _goto(self, frame: _Frame, target: BasicBlock) -> None:
        if self.on_edge is not None:
            self.on_edge(frame.block, target)
        frame.prev_block = frame.block
        frame.block = target
        frame.index = 0
        # Evaluate all phis of the target atomically with respect to each
        # other (they conceptually execute in parallel on the edge).
        phis = target.phis()
        if phis:
            values = [
                self._value(frame, phi.incoming_for(frame.prev_block)) for phi in phis
            ]
            for phi, value in zip(phis, values):
                frame.env[id(phi)] = value
                if self.on_execute is not None:
                    self.on_execute(phi)
            frame.index = len(phis)

    # -- instruction dispatch ------------------------------------------------------

    def _execute(self, frame: _Frame, inst: Instruction) -> None:
        if isinstance(inst, BinaryOp):
            self._set(frame, inst, self._binop(frame, inst))
        elif isinstance(inst, ICmp):
            self._set(frame, inst, self._icmp(frame, inst))
        elif isinstance(inst, FCmp):
            a = self._value(frame, inst.lhs)
            b = self._value(frame, inst.rhs)
            self._set(frame, inst, int(FCMP_FUNCS[inst.pred](a, b)))
        elif isinstance(inst, Alloca):
            addr = self.memory.alloc_object(inst.allocated_type, site=-2)
            self._set(frame, inst, addr)
        elif isinstance(inst, Load):
            addr = self._value(frame, inst.pointer)
            self._set(frame, inst, self.memory.load(addr, inst.type))
        elif isinstance(inst, Store):
            addr = self._value(frame, inst.pointer)
            self.memory.store(addr, inst.value.type, self._value(frame, inst.value))
            self._advance(frame)
        elif isinstance(inst, GEP):
            self._set(frame, inst, self._gep(frame, inst))
        elif isinstance(inst, Jump):
            self._goto(frame, inst.target)
        elif isinstance(inst, CondBranch):
            cond = self._value(frame, inst.cond)
            self._goto(frame, inst.if_true if cond else inst.if_false)
        elif isinstance(inst, Phi):
            # Reached only when stepping resumes mid-block; phis are
            # evaluated by _goto, so the value must already exist.
            if id(inst) not in frame.env:
                raise InterpError("phi encountered outside a block entry")
            frame.index += 1
        elif isinstance(inst, Call):
            self._call(frame, inst)
        elif isinstance(inst, Ret):
            value = None if inst.value is None else self._value(frame, inst.value)
            self._stack.pop()
            if self._stack:
                caller = self._stack[-1]
                if value is not None:
                    caller.env[id(frame.call_inst)] = value
                caller.index += 1
            else:
                self._return_value = value
        elif isinstance(inst, Cast):
            self._set(frame, inst, self._cast(frame, inst))
        elif isinstance(inst, Select):
            cond, tv, fv = (self._value(frame, op) for op in inst.operands)
            self._set(frame, inst, tv if cond else fv)
        elif isinstance(inst, Produce):
            self._require_io().produce(
                inst.channel,
                int(self._value(frame, inst.worker_select)) % inst.channel.n_channels,
                self._value(frame, inst.value),
            )
            self._advance(frame)
        elif isinstance(inst, ProduceBroadcast):
            self._require_io().produce_broadcast(
                inst.channel, self._value(frame, inst.value)
            )
            self._advance(frame)
        elif isinstance(inst, Consume):
            if inst.worker_select is not None:
                index = int(self._value(frame, inst.worker_select)) % inst.channel.n_channels
            else:
                index = self.worker_id
            ok, value = self._require_io().try_consume(inst.channel, index)
            if not ok:
                raise Blocked()
            self._set(frame, inst, value)
        elif isinstance(inst, StoreLiveout):
            self._require_io().liveouts[inst.liveout_id] = self._value(
                frame, inst.value
            )
            self._advance(frame)
        elif isinstance(inst, RetrieveLiveout):
            liveouts = self._require_io().liveouts
            if inst.liveout_id not in liveouts:
                raise InterpError(f"liveout #{inst.liveout_id} never stored")
            self._set(frame, inst, liveouts[inst.liveout_id])
        elif isinstance(inst, ParallelFork):
            if self.fork_handler is None:
                raise InterpError(
                    "parallel_fork executed without a fork handler installed"
                )
            livein_values = [self._value(frame, v) for v in inst.liveins]
            self.fork_handler.fork(inst, livein_values)
            self._advance(frame)
        elif isinstance(inst, ParallelJoin):
            if self.fork_handler is None:
                raise InterpError(
                    "parallel_join executed without a fork handler installed"
                )
            self.fork_handler.join(inst.loop_id)
            self._advance(frame)
        else:
            raise InterpError(f"cannot interpret opcode {inst.opcode}")

    def _require_io(self) -> ChannelIO:
        if self.channel_io is None:
            raise InterpError("CGPA primitive executed without a ChannelIO")
        return self.channel_io

    def _binop(self, frame: _Frame, inst: BinaryOp):
        a = self._value(frame, inst.lhs)
        b = self._value(frame, inst.rhs)
        op = inst.opcode
        if op in FLOAT_BINOP_FUNCS:
            try:
                result = FLOAT_BINOP_FUNCS[op](a, b)
            except ZeroDivisionError:
                raise InterpError("float division by zero") from None
            if isinstance(inst.type, FloatType) and inst.type.bits == 32:
                result = round_f32(result)
            return result
        bits = inst.type.bits  # type: ignore[union-attr]
        if op in ("udiv", "urem", "lshr", "ult"):
            a = to_unsigned(a, bits)
            b = to_unsigned(b, bits)
        try:
            raw = INT_BINOP_FUNCS[op](int(a), int(b))
        except ZeroDivisionError:
            raise InterpError("integer division by zero") from None
        return wrap_int(raw, bits)

    def _icmp(self, frame: _Frame, inst: ICmp) -> int:
        a = self._value(frame, inst.lhs)
        b = self._value(frame, inst.rhs)
        if inst.pred.startswith("u") or inst.lhs.type.is_pointer:
            bits = 32 if inst.lhs.type.is_pointer else inst.lhs.type.bits
            a = to_unsigned(int(a), bits)
            b = to_unsigned(int(b), bits)
        return int(ICMP_FUNCS[inst.pred](a, b))

    def _gep(self, frame: _Frame, inst: GEP) -> int:
        addr = int(self._value(frame, inst.base))
        pointee = inst.base.type.pointee  # type: ignore[union-attr]
        indices = inst.indices
        addr += pointee.size() * int(self._value(frame, indices[0]))
        current = pointee
        for idx in indices[1:]:
            if isinstance(current, StructType):
                field = int(idx.value)  # verified constant at construction
                addr += current.field_offset(field)
                current = current.field_type(field)
            elif isinstance(current, ArrayType):
                addr += current.element.size() * int(self._value(frame, idx))
                current = current.element
            else:
                raise InterpError(f"gep through non-aggregate {current!r}")
        return addr & 0xFFFFFFFF

    def _cast(self, frame: _Frame, inst: Cast):
        value = self._value(frame, inst.value)
        op = inst.opcode
        if op == "trunc":
            return wrap_int(int(value), inst.type.bits)  # type: ignore[union-attr]
        if op == "zext":
            return to_unsigned(int(value), inst.value.type.bits)  # type: ignore[union-attr]
        if op == "sext":
            return int(value)
        if op == "fptosi":
            return wrap_int(int(value), inst.type.bits)  # type: ignore[union-attr]
        if op == "sitofp":
            result = float(value)
            if isinstance(inst.type, FloatType) and inst.type.bits == 32:
                result = round_f32(result)
            return result
        if op == "fpext":
            return float(value)
        if op == "fptrunc":
            return round_f32(float(value))
        if op in ("bitcast", "ptrtoint", "inttoptr"):
            if inst.type.is_pointer or op == "ptrtoint":
                return int(value) & 0xFFFFFFFF
            return value
        raise InterpError(f"cannot interpret cast {op}")

    def _call(self, frame: _Frame, inst: Call) -> None:
        callee = inst.callee
        if callee.is_declaration:
            if callee.name in MALLOC_NAMES:
                size = int(self._value(frame, inst.args[0]))
                site = self._alloc_sites.get(id(inst), -1)
                self._set(frame, inst, self.memory.malloc(size, site))
                return
            raise InterpError(f"call to undefined function @{callee.name}")
        new_frame = _Frame(callee, inst)
        for formal, actual_value in zip(callee.args, inst.args):
            new_frame.env[id(formal)] = self._value(frame, actual_value)
        self._stack.append(new_frame)


def _number_malloc_sites(module: Module) -> dict[int, int]:
    """Deterministically number malloc call sites across the module.

    The same numbering is used by the points-to analysis
    (:mod:`repro.analysis.pointsto`), so static abstract objects and
    runtime allocations correspond one-to-one.
    """
    sites: dict[int, int] = {}
    counter = 0
    for function in module.functions.values():
        for inst in function.instructions():
            if isinstance(inst, Call) and inst.callee.name in MALLOC_NAMES:
                sites[id(inst)] = counter
                counter += 1
    return sites


def malloc_site_table(module: Module) -> dict[int, Call]:
    """site id -> call instruction (the inverse of the numbering above)."""
    table: dict[int, Call] = {}
    counter = 0
    for function in module.functions.values():
        for inst in function.instructions():
            if isinstance(inst, Call) and inst.callee.name in MALLOC_NAMES:
                table[counter] = inst
                counter += 1
    return table


def _place_globals(module: Module, memory: Memory) -> dict[str, int]:
    addresses: dict[str, int] = {}
    for g in module.globals.values():
        addr = memory.malloc(
            g.value_type.size(), site=-3, align=max(g.value_type.alignment(), 4)
        )
        addresses[g.name] = addr
        if g.initializer is not None:
            _write_initializer(memory, addr, g.value_type, list(g.initializer))
    return addresses


def _write_initializer(memory: Memory, addr: int, type_, flat: list) -> None:
    """Write a flat scalar list into memory following the type layout."""
    scalars = _scalar_layout(type_)
    if len(flat) != len(scalars):
        raise InterpError(
            f"initializer has {len(flat)} scalars, type needs {len(scalars)}"
        )
    for (offset, scalar_type), value in zip(scalars, flat):
        memory.store(addr + offset, scalar_type, value)


def _scalar_layout(type_, base: int = 0) -> list:
    if isinstance(type_, (IntType, FloatType, PointerType)):
        return [(base, type_)]
    if isinstance(type_, ArrayType):
        out = []
        for i in range(type_.count):
            out.extend(_scalar_layout(type_.element, base + i * type_.element.size()))
        return out
    if isinstance(type_, StructType):
        out = []
        for i, (_, ftype) in enumerate(type_.fields):
            out.extend(_scalar_layout(ftype, base + type_.field_offset(i)))
        return out
    raise InterpError(f"no scalar layout for {type_!r}")
