"""IR interpretation: memory image, stepping interpreter, profiler."""

from .interpreter import (
    BROADCAST_INDEX,
    MALLOC_NAMES,
    ChannelIO,
    Interpreter,
    RecordingChannelIO,
    Status,
    malloc_site_table,
)
from .memory import HEAP_BASE, Allocation, Memory, round_f32, to_unsigned, wrap_int
from .profiler import Profile, profile_call

__all__ = [
    "Interpreter", "ChannelIO", "RecordingChannelIO", "BROADCAST_INDEX",
    "Status", "MALLOC_NAMES", "malloc_site_table",
    "Memory", "Allocation", "HEAP_BASE", "wrap_int", "to_unsigned", "round_f32",
    "Profile", "profile_call",
]
